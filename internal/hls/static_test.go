package hls_test

import (
	"errors"
	"testing"

	"autophase/internal/analysis"
	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// staticFixture is a program squarely inside the static fragment once
// mem2reg has run: nested counted loops, a memset, in-bounds array traffic,
// a non-recursive call, and a constant return value.
func staticFixture() *ir.Module {
	m := ir.NewModule("staticfix")
	fe := progen.NewFE(m)
	triple := fe.Begin("triple", ir.I32, "x")
	fe.Ret(fe.Mul(fe.V("x"), fe.C(3)))
	fe.Begin("main", ir.I32)
	fe.Arr("buf", 16)
	fe.B.Memset(fe.Addr("buf"), fe.C(0), ir.ConstInt(ir.I32, 16))
	fe.Var("acc", 0)
	fe.For("i", 0, 10, 1, func(iv func() ir.Value) {
		fe.For("j", 0, 4, 1, func(jv func() ir.Value) {
			fe.Put("buf", jv(), fe.Add(fe.Get("buf", jv()), iv()))
			fe.Set("acc", fe.Add(fe.V("acc"), fe.Call(triple, jv())))
		})
	})
	fe.Print(fe.V("acc"))
	fe.Ret(fe.C(7))
	return m
}

// dynamicFixture branches on a value loaded from memory, which no static
// range can decide.
func dynamicFixture() *ir.Module {
	m := ir.NewModule("dynfix")
	g := m.NewGlobal("tab", ir.ArrayOf(ir.I32, 4), []int64{5, 6, 7, 8}, true)
	fe := progen.NewFE(m)
	fe.Begin("main", ir.I32)
	fe.Var("out", 1)
	fe.If(fe.Cmp(ir.CmpSLT, fe.GetG(g, fe.C(2)), fe.C(50)), func() {
		fe.Set("out", fe.C(2))
	}, func() {
		fe.Set("out", fe.C(3))
	})
	fe.Ret(fe.V("out"))
	return m
}

func mem2reg(m *ir.Module) *ir.Module {
	passes.Apply(m, []int{38})
	return m
}

// TestStaticProfileCrafted: the crafted fixture takes the fast path and all
// three entry points agree with the interpreter exactly.
func TestStaticProfileCrafted(t *testing.T) {
	m := mem2reg(staticFixture())
	cfg, lim := hls.DefaultConfig, interp.DefaultLimits
	static, ok := hls.StaticProfile(m, cfg, lim)
	if !ok {
		t.Fatal("crafted static fixture declined the fast path")
	}
	ref, err := hls.Profile(m, cfg, lim)
	if err != nil {
		t.Fatalf("interpreted profile failed: %v", err)
	}
	if static.Cycles != ref.Cycles || static.Steps != ref.Steps || static.AreaLUT != ref.AreaLUT {
		t.Fatalf("static (cycles=%d steps=%d area=%d) != interp (cycles=%d steps=%d area=%d)",
			static.Cycles, static.Steps, static.AreaLUT, ref.Cycles, ref.Steps, ref.AreaLUT)
	}
	if !static.Static || ref.Static {
		t.Fatal("Static flag not set correctly")
	}
	if static.Exit != 7 || ref.Exit != 7 {
		t.Fatalf("exit: static=%d interp=%d, want 7", static.Exit, ref.Exit)
	}
	fast, err := hls.ProfileFast(m, cfg, lim)
	if err != nil || !fast.Static || fast.Cycles != ref.Cycles {
		t.Fatalf("ProfileFast: %+v, %v", fast, err)
	}
	checked, err := hls.ProfileChecked(m, cfg, lim)
	if err != nil || !checked.Static || checked.Cycles != ref.Cycles {
		t.Fatalf("ProfileChecked: %+v, %v", checked, err)
	}
}

// TestStaticProfileDeclines: a data-dependent branch must push the module
// off the fast path, and ProfileFast must still answer via the interpreter.
func TestStaticProfileDeclines(t *testing.T) {
	m := mem2reg(dynamicFixture())
	cfg, lim := hls.DefaultConfig, interp.DefaultLimits
	if _, ok := hls.StaticProfile(m, cfg, lim); ok {
		t.Fatal("load-dependent branch must decline the static path")
	}
	rep, err := hls.ProfileFast(m, cfg, lim)
	if err != nil || rep.Static {
		t.Fatalf("fallback ProfileFast: %+v, %v", rep, err)
	}
	if rep.Exit != 2 {
		t.Fatalf("fallback exit = %d, want 2", rep.Exit)
	}
	if _, err := hls.ProfileChecked(m, cfg, lim); err != nil {
		t.Fatalf("ProfileChecked on declined module: %v", err)
	}
}

// TestStaticProfileDifferential is the acceptance-criteria sweep: on every
// bundled benchmark under several pass pipelines, whenever StaticProfile
// claims applicability its cycle and step counts must equal the
// interpreter's exactly — and at least one benchmark must take the path.
func TestStaticProfileDifferential(t *testing.T) {
	preludes := map[string][]int{
		"mem2reg":       {38},
		"canonicalized": {38, 31, 30, 29, 23, 30},
		"o3":            passes.O3Sequence,
	}
	cfg, lim := hls.DefaultConfig, interp.DefaultLimits
	hits := 0
	for _, name := range progen.BenchmarkNames {
		for pname, seq := range preludes {
			m := progen.Benchmark(name)
			passes.Apply(m, seq)
			static, ok := hls.StaticProfile(m, cfg, lim)
			if !ok {
				continue
			}
			hits++
			ref, err := hls.Profile(m, cfg, lim)
			if err != nil {
				t.Errorf("%s/%s: static claimed success, interpreter failed: %v", name, pname, err)
				continue
			}
			if static.Cycles != ref.Cycles || static.Steps != ref.Steps {
				t.Errorf("%s/%s: static cycles=%d steps=%d, interp cycles=%d steps=%d",
					name, pname, static.Cycles, static.Steps, ref.Cycles, ref.Steps)
			}
			if static.Exit != 0 && static.Exit != ref.Exit {
				t.Errorf("%s/%s: static exit=%d, interp exit=%d", name, pname, static.Exit, ref.Exit)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no benchmark took the static fast path under any prelude")
	}
	t.Logf("static fast path taken on %d benchmark/prelude combinations", hits)
}

// TestProfileLimitErrors: each interpreter limit surfaces its own distinct
// error through hls.Profile.
func TestProfileLimitErrors(t *testing.T) {
	recur := func() *ir.Module {
		m := ir.NewModule("recur")
		fe := progen.NewFE(m)
		r := fe.Begin("r", ir.I32)
		fe.Ret(fe.Call(r))
		fe.Begin("main", ir.I32)
		fe.Ret(fe.Call(r))
		return m
	}
	cases := []struct {
		name string
		mod  *ir.Module
		lim  interp.Limits
		want error
	}{
		{"steps", progen.Benchmark("matmul"), interp.Limits{MaxSteps: 10, MaxDepth: 256, MaxCells: 1 << 20}, interp.ErrStepLimit},
		{"depth", recur(), interp.DefaultLimits, interp.ErrDepthLimit},
		{"cells", progen.Benchmark("matmul"), interp.Limits{MaxSteps: 4_000_000, MaxDepth: 256, MaxCells: 8}, interp.ErrMemLimit},
	}
	for _, tc := range cases {
		_, err := hls.Profile(tc.mod, hls.DefaultConfig, tc.lim)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		for _, other := range cases {
			if other.want != tc.want && errors.Is(err, other.want) {
				t.Errorf("%s: error %v also matches %v; limit errors must stay distinct", tc.name, err, other.want)
			}
		}
		// A limit overrun must also keep the static path honest: it may
		// decline, but it must never claim success.
		if _, ok := hls.StaticProfile(tc.mod, hls.DefaultConfig, tc.lim); ok {
			t.Errorf("%s: StaticProfile claimed success on a limit-exceeding run", tc.name)
		}
	}
}

// refTripSim is the legacy exit-test simulation the loop passes used before
// SCEV, reproduced here as the benchmark baseline.
func refTripSim(start, step, bound int64, bits int, pred ir.CmpPred, onNext, exitWhen bool, max int64) (int64, bool) {
	ty := ir.IntType(bits)
	cur := ty.TruncVal(start)
	for n := int64(1); n <= max; n++ {
		v := cur
		if onNext {
			v = ir.EvalBinary(ir.OpAdd, ty, cur, step)
		}
		if pred.Eval(v, bound, bits) == exitWhen {
			return n, true
		}
		cur = ir.EvalBinary(ir.OpAdd, ty, cur, step)
	}
	return 0, false
}

// BenchmarkTripCount quantifies the closed form against the old simulation
// on a million-iteration counted loop.
func BenchmarkTripCount(b *testing.B) {
	const (
		start = 0
		step  = 3
		bound = 3_000_000
	)
	b.Run("scev", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, kind := analysis.ExitCount(start, step, bound, 32, ir.CmpSLT, false, false)
			if kind != analysis.TripFinite || n != 1_000_001 {
				b.Fatalf("got %d, %v", n, kind)
			}
		}
	})
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, ok := refTripSim(start, step, bound, 32, ir.CmpSLT, false, false, 1<<21)
			if !ok || n != 1_000_001 {
				b.Fatalf("got %d, %v", n, ok)
			}
		}
	})
}

// TestStaticProfileInterprocedural pins the interprocedural fast path on
// the two call-bearing programs it was built for: blowfish (a benchmark
// whose round function previously forced the interpreter on every
// pipeline) and the callheavy stress program (a three-level call chain).
// ProfileChecked asserts exact static/interp equality internally.
func TestStaticProfileInterprocedural(t *testing.T) {
	preludes := map[string][]int{
		"mem2reg":       {38},
		"canonicalized": {38, 31, 30, 29, 23, 30},
		"o3":            passes.O3Sequence,
	}
	cfg, lim := hls.DefaultConfig, interp.DefaultLimits
	for _, prog := range []struct {
		name string
		mod  func() *ir.Module
	}{
		{"blowfish", func() *ir.Module { return progen.Benchmark("blowfish") }},
		{"callheavy", progen.CallHeavy},
	} {
		for pname, seq := range preludes {
			m := prog.mod()
			passes.Apply(m, seq)
			rep, err := hls.ProfileChecked(m, cfg, lim)
			if err != nil {
				t.Errorf("%s/%s: ProfileChecked: %v", prog.name, pname, err)
				continue
			}
			if !rep.Static {
				t.Errorf("%s/%s: expected the interprocedural static fast path, got the interpreter", prog.name, pname)
			}
		}
	}
}

// BenchmarkProfileStaticVsInterp compares the two reward paths on the
// mem2reg'd matmul benchmark plus the call-bearing blowfish and callheavy
// programs, whose static path must pay for the interprocedural
// context-sensitive range analysis.
func BenchmarkProfileStaticVsInterp(b *testing.B) {
	cfg, lim := hls.DefaultConfig, interp.DefaultLimits
	mods := []struct {
		name string
		mod  *ir.Module
	}{
		{"matmul", mem2reg(progen.Benchmark("matmul"))},
		{"blowfish", mem2reg(progen.Benchmark("blowfish"))},
		{"callheavy", mem2reg(progen.CallHeavy())},
	}
	for _, tc := range mods {
		b.Run(tc.name+"/static", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := hls.StaticProfile(tc.mod, cfg, lim); !ok {
					b.Fatal("static path declined")
				}
			}
		})
		b.Run(tc.name+"/vm", func(b *testing.B) {
			// A warm profiler, as in the search loop: the compile cache
			// already holds the module fingerprint (core always profiles
			// through ProfileFP), lowering is paid once into the
			// fingerprint-keyed cache, execution every iteration.
			prof := hls.NewProfiler(hls.ProfileOptions{Config: cfg, Limits: lim, Engine: hls.EngineVM})
			fp := tc.mod.Fingerprint()
			if _, err := prof.ProfileFP(tc.mod, fp); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prof.ProfileFP(tc.mod, fp); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/interp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hls.Profile(tc.mod, cfg, lim); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
