package hls

import (
	"strings"
	"testing"
	"testing/quick"

	"autophase/internal/interp"
	"autophase/internal/ir"
)

// chainBlock builds main with one block of n dependent adds.
func chainBlock(n int) *ir.Module {
	m := ir.NewModule("chain")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	var v ir.Value = f.Params[0]
	for i := 0; i < n; i++ {
		v = b.Add(v, ir.ConstInt(ir.I32, 1))
	}
	b.Ret(v)
	return m
}

func TestChainingPacksOps(t *testing.T) {
	// At 200 MHz the budget is 5 ns and an add is 2.4 ns, so two adds chain
	// into one state; each extra pair costs one more state.
	cases := []struct{ n, states int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {8, 4},
	}
	for _, c := range cases {
		m := chainBlock(c.n)
		ms := Schedule(m, DefaultConfig)
		got := ms.StatesOf(m.Func("main").Entry())
		if got != c.states {
			t.Errorf("%d chained adds: %d states, want %d", c.n, got, c.states)
		}
	}
}

func TestLowerFrequencyPacksMore(t *testing.T) {
	m := chainBlock(8)
	fast := Schedule(m, Config{FrequencyMHz: 200, MemPorts: 2, Dividers: 1})
	slow := Schedule(m, Config{FrequencyMHz: 50, MemPorts: 2, Dividers: 1})
	fs := fast.StatesOf(m.Func("main").Entry())
	ss := slow.StatesOf(m.Func("main").Entry())
	if ss >= fs {
		t.Fatalf("lower frequency should pack more logic per state: 200MHz=%d 50MHz=%d", fs, ss)
	}
}

func TestMemoryPortContention(t *testing.T) {
	// Four independent loads: with 2 ports they issue over 2 cycles (plus
	// latency); with 1 port over 4.
	build := func() *ir.Module {
		m := ir.NewModule("mem")
		f := m.NewFunc("main", ir.I32)
		b := ir.NewBuilder()
		b.SetInsert(f.NewBlock("entry"))
		arr := b.Alloca(ir.ArrayOf(ir.I32, 8))
		var acc ir.Value = ir.ConstInt(ir.I32, 0)
		for i := int64(0); i < 4; i++ {
			acc = b.Add(acc, b.Load(b.GEP(arr, ir.ConstInt(ir.I32, i))))
		}
		b.Ret(acc)
		return m
	}
	m := build()
	two := Schedule(m, Config{FrequencyMHz: 200, MemPorts: 2, Dividers: 1})
	one := Schedule(m, Config{FrequencyMHz: 200, MemPorts: 1, Dividers: 1})
	s2 := two.StatesOf(m.Func("main").Entry())
	s1 := one.StatesOf(m.Func("main").Entry())
	if s1 <= s2 {
		t.Fatalf("fewer ports must not schedule faster: 1port=%d 2port=%d", s1, s2)
	}
}

func TestDividerSerialization(t *testing.T) {
	m := ir.NewModule("div")
	f := m.NewFunc("main", ir.I32, ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	d1 := b.SDiv(f.Params[0], ir.ConstInt(ir.I32, 3))
	d2 := b.SDiv(f.Params[0], ir.ConstInt(ir.I32, 5))
	b.Ret(b.Add(d1, d2))
	ms := Schedule(m, DefaultConfig)
	// Two divisions on one divider: second starts a cycle later; 8-cycle
	// latency each -> at least 9 states before the add.
	if got := ms.StatesOf(f.Entry()); got < 9 {
		t.Fatalf("divider contention ignored: %d states", got)
	}
}

func TestCyclesEqualStatesTimesCounts(t *testing.T) {
	// A straight-line program: dynamic cycles == static states (+call
	// overhead for main itself).
	m := chainBlock(6)
	// Give the param a value: main(arg) is invoked with 0 by the runtime.
	rep, err := Profile(m, DefaultConfig, interp.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	ms := Schedule(m, DefaultConfig)
	want := int64(ms.StatesOf(m.Func("main").Entry())) + 1 // + return handshake
	if rep.Cycles != want {
		t.Fatalf("cycles=%d want %d", rep.Cycles, want)
	}
}

func TestProfileMonotoneInTrips(t *testing.T) {
	f := func(raw uint8) bool {
		trips := int64(raw%20) + 1
		build := func(n int64) *ir.Module {
			m := ir.NewModule("loop")
			fe := m.NewFunc("main", ir.I32)
			b := ir.NewBuilder()
			entry := fe.NewBlock("entry")
			header := fe.NewBlock("header")
			body := fe.NewBlock("body")
			exit := fe.NewBlock("exit")
			b.SetInsert(entry)
			b.Br(header)
			b.SetInsert(header)
			iv := b.Phi(ir.I32)
			b.CondBr(b.ICmp(ir.CmpSLT, iv, ir.ConstInt(ir.I32, n)), body, exit)
			b.SetInsert(body)
			next := b.Add(iv, ir.ConstInt(ir.I32, 1))
			b.Br(header)
			iv.SetPhiIncoming(entry, ir.ConstInt(ir.I32, 0))
			iv.SetPhiIncoming(body, next)
			b.SetInsert(exit)
			b.Ret(iv)
			return m
		}
		a, err1 := Profile(build(trips), DefaultConfig, interp.DefaultLimits)
		bb, err2 := Profile(build(trips+1), DefaultConfig, interp.DefaultLimits)
		return err1 == nil && err2 == nil && bb.Cycles > a.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaPositiveAndMonotone(t *testing.T) {
	small := Schedule(chainBlock(2), DefaultConfig)
	big := Schedule(chainBlock(20), DefaultConfig)
	if small.Area() <= 0 || big.Area() <= small.Area() {
		t.Fatalf("area model broken: small=%d big=%d", small.Area(), big.Area())
	}
}

func TestEmitRTL(t *testing.T) {
	m := chainBlock(4)
	ms := Schedule(m, DefaultConfig)
	rtl := ms.EmitRTL(m)
	for _, want := range []string{"module main", "FSM states", "endmodule"} {
		if !strings.Contains(rtl, want) {
			t.Fatalf("RTL missing %q:\n%s", want, rtl)
		}
	}
}

func TestBindingReport(t *testing.T) {
	m := chainBlock(8) // 8 dependent adds over 4 states
	ms := Schedule(m, DefaultConfig)
	b := ms.Bind(m)
	if b.Spatial[UnitAdder] != 8 {
		t.Fatalf("spatial adders = %d, want 8", b.Spatial[UnitAdder])
	}
	// 8 adds over 4 states share down to 2 adders.
	if b.Shared[UnitAdder] != 2 {
		t.Fatalf("shared adders = %d, want 2", b.Shared[UnitAdder])
	}
	if b.Registers < 8 {
		t.Fatalf("registers = %d", b.Registers)
	}
	if rep := b.Report(); !strings.Contains(rep, "adder") {
		t.Fatalf("report missing adder row: %s", rep)
	}
}

func TestBindingSharingNeverExceedsSpatial(t *testing.T) {
	// A mixed block: loads, multiplies, compares.
	m := ir.NewModule("mix")
	f := m.NewFunc("main", ir.I32)
	b := ir.NewBuilder()
	b.SetInsert(f.NewBlock("entry"))
	arr := b.Alloca(ir.ArrayOf(ir.I32, 8))
	var acc ir.Value = ir.ConstInt(ir.I32, 0)
	for i := int64(0); i < 4; i++ {
		v := b.Load(b.GEP(arr, ir.ConstInt(ir.I32, i)))
		acc = b.Add(acc, b.Mul(v, v))
	}
	cmp := b.ICmp(ir.CmpSGT, acc, ir.ConstInt(ir.I32, 10))
	sel := b.Select(cmp, acc, ir.ConstInt(ir.I32, 0))
	b.Ret(sel)

	ms := Schedule(m, DefaultConfig)
	bind := ms.Bind(m)
	for u, shared := range bind.Shared {
		if shared > bind.Spatial[u] {
			t.Fatalf("%s shared %d > spatial %d", u, shared, bind.Spatial[u])
		}
		if shared <= 0 {
			t.Fatalf("%s shared %d", u, shared)
		}
	}
	if bind.Spatial[UnitMultiplier] != 4 || bind.Spatial[UnitMemPort] != 4 {
		t.Fatalf("spatial counts wrong: %+v", bind.Spatial)
	}
}
