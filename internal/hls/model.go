// Package hls is the LegUp stand-in: it schedules each basic block's
// instructions into FSM states under a target clock frequency with operation
// chaining and memory-port resource constraints, and combines the per-block
// state counts with the interpreter's block-frequency profile to estimate
// the synthesized circuit's total clock cycles — the reward signal the
// paper's RL agent optimizes.
package hls

import "autophase/internal/ir"

// Config sets the synthesis constraints. The paper fixes the frequency
// constraint at 200 MHz; lower frequencies give a larger per-cycle delay
// budget so more logic chains into a single FSM state.
type Config struct {
	// FrequencyMHz is the target clock frequency constraint.
	FrequencyMHz float64
	// MemPorts is the number of RAM ports usable per cycle (LegUp targets
	// dual-port block RAMs).
	MemPorts int
	// Dividers is the number of division units available per cycle.
	Dividers int
}

// DefaultConfig mirrors the paper's experimental setting.
var DefaultConfig = Config{FrequencyMHz: 200, MemPorts: 2, Dividers: 1}

// CycleNs returns the per-cycle delay budget in nanoseconds.
func (c Config) CycleNs() float64 { return 1000.0 / c.FrequencyMHz }

// opTiming describes one operation's hardware timing.
type opTiming struct {
	delayNs   float64 // combinational delay; chains with others in a state
	latency   int     // 0 = combinational; >0 = fixed multi-cycle unit
	memPort   bool    // consumes a memory port on its issue cycle
	divider   bool    // consumes the divider
	barrier   bool    // must keep program order with other barriers
	areaLUTs  int     // rough LUT cost of a dedicated unit
	stateOnly bool    // consumes a full state on its own (calls)
}

// timing returns the timing record for an instruction. Constant-operand
// shifts are free wiring; variable shifts need a barrel shifter.
func timing(in *ir.Instr) opTiming {
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		return opTiming{delayNs: 2.4, areaLUTs: 32}
	case ir.OpMul:
		return opTiming{delayNs: 6.8, areaLUTs: 600}
	case ir.OpSDiv, ir.OpSRem:
		return opTiming{latency: 8, divider: true, areaLUTs: 1100}
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		return opTiming{delayNs: 0.9, areaLUTs: 16}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if _, ok := ir.IsConst(in.Args[1]); ok {
			return opTiming{delayNs: 0.0, areaLUTs: 0} // wiring
		}
		return opTiming{delayNs: 2.2, areaLUTs: 96}
	case ir.OpICmp:
		return opTiming{delayNs: 1.8, areaLUTs: 24}
	case ir.OpSelect:
		return opTiming{delayNs: 1.2, areaLUTs: 16}
	case ir.OpPhi:
		return opTiming{delayNs: 0.0} // resolved by state-entry muxes
	case ir.OpAlloca:
		return opTiming{delayNs: 0.0} // static elaboration
	case ir.OpLoad:
		return opTiming{latency: 2, memPort: true, barrier: false, areaLUTs: 8}
	case ir.OpStore:
		return opTiming{latency: 1, memPort: true, barrier: true, areaLUTs: 8}
	case ir.OpGEP:
		return opTiming{delayNs: 1.4, areaLUTs: 20}
	case ir.OpMemset:
		// One state to start the burst engine; per-cell cycles accrue
		// dynamically in the profiler.
		return opTiming{latency: 1, memPort: true, barrier: true, areaLUTs: 80}
	case ir.OpTrunc, ir.OpBitCast:
		return opTiming{delayNs: 0.0}
	case ir.OpZExt, ir.OpSExt:
		return opTiming{delayNs: 0.0}
	case ir.OpCall:
		return opTiming{stateOnly: true, barrier: true, areaLUTs: 0}
	case ir.OpPrint:
		return opTiming{latency: 1, barrier: true, areaLUTs: 4}
	case ir.OpRet, ir.OpBr, ir.OpSwitch, ir.OpUnreachable:
		return opTiming{delayNs: 0.0}
	}
	return opTiming{delayNs: 1.0}
}
