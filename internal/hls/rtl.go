package hls

import (
	"fmt"
	"strings"

	"autophase/internal/ir"
)

// EmitRTL renders a compact Verilog-like description of the scheduled
// module: one RTL module per function with an FSM whose states follow the
// block schedule. It is the "hardware RTL" end of the Figure 4 flow; the
// cycle profiler, not RTL simulation, supplies the reward (as in the
// paper, which reserves logic simulation for final validation).
func (ms *ModuleSchedule) EmitRTL(m *ir.Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// RTL for module %s @ %.0f MHz\n", m.Name, ms.Config.FrequencyMHz)
	for _, f := range m.Funcs {
		fs := ms.Funcs[f]
		if fs == nil {
			continue
		}
		fmt.Fprintf(&sb, "module %s(input clk, input rst, input start, output reg done", f.Name)
		for _, p := range f.Params {
			fmt.Fprintf(&sb, ", input [%d:0] %s", bitsOf(p.Ty)-1, p.Name)
		}
		if !f.Ret.IsVoid() {
			fmt.Fprintf(&sb, ", output reg [%d:0] ret", bitsOf(f.Ret)-1)
		}
		sb.WriteString(");\n")
		fmt.Fprintf(&sb, "  // %d FSM states, ~%d LUTs\n", fs.States, fs.AreaLUT)
		fmt.Fprintf(&sb, "  reg [%d:0] state;\n", fsmBits(fs.States)-1)
		sb.WriteString("  always @(posedge clk) begin\n    case (state)\n")
		state := 0
		for _, b := range f.Blocks {
			bs := fs.Blocks[b]
			fmt.Fprintf(&sb, "      // block %s: states %d..%d\n", rtlLabel(b), state, state+bs.States-1)
			for s := 0; s < bs.States; s++ {
				fmt.Fprintf(&sb, "      %d: state <= %d;\n", state, state+1)
				state++
			}
		}
		sb.WriteString("    endcase\n  end\nendmodule\n\n")
	}
	return sb.String()
}

func rtlLabel(b *ir.Block) string {
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("bb%d", b.Index())
}

func bitsOf(t *ir.Type) int {
	if t.IsInt() {
		return t.Bits
	}
	return 32
}

func fsmBits(states int) int {
	bits := 1
	for (1 << bits) < states+1 {
		bits++
	}
	return bits
}
