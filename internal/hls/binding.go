package hls

import (
	"fmt"
	"sort"
	"strings"

	"autophase/internal/ir"
)

// UnitKind buckets operations onto hardware functional-unit classes, the
// granularity LegUp's binding stage reports.
type UnitKind string

// Functional-unit classes.
const (
	UnitAdder      UnitKind = "adder"
	UnitMultiplier UnitKind = "multiplier"
	UnitDivider    UnitKind = "divider"
	UnitLogic      UnitKind = "logic"
	UnitShifter    UnitKind = "shifter"
	UnitComparator UnitKind = "comparator"
	UnitMemPort    UnitKind = "mem-port"
	UnitMux        UnitKind = "mux"
)

func unitOf(in *ir.Instr) (UnitKind, bool) {
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		return UnitAdder, true
	case ir.OpMul:
		return UnitMultiplier, true
	case ir.OpSDiv, ir.OpSRem:
		return UnitDivider, true
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		return UnitLogic, true
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if _, ok := ir.IsConst(in.Args[1]); ok {
			return "", false // constant shifts are wiring
		}
		return UnitShifter, true
	case ir.OpICmp:
		return UnitComparator, true
	case ir.OpLoad, ir.OpStore, ir.OpMemset:
		return UnitMemPort, true
	case ir.OpSelect, ir.OpPhi:
		return UnitMux, true
	}
	return "", false
}

// Binding is a resource-sharing report: how many units of each class the
// design needs when operations scheduled in different states share units,
// versus fully spatial (one unit per operation) implementation.
type Binding struct {
	// Shared is the per-class unit count under maximal sharing: the peak
	// number of simultaneously-active operations of that class across all
	// blocks and states.
	Shared map[UnitKind]int
	// Spatial is the per-class operation count (one unit each, LegUp's
	// default binding for most operators).
	Spatial map[UnitKind]int
	// Registers estimates the number of value registers (one per
	// instruction whose value crosses a state boundary, approximated by
	// all non-void instructions).
	Registers int
}

// Bind computes the binding report for a scheduled module. Peak concurrent
// usage per class is approximated per block as ceil(ops/states): a block
// with 8 adds over 4 states needs at least 2 shared adders.
func (ms *ModuleSchedule) Bind(m *ir.Module) *Binding {
	b := &Binding{Shared: make(map[UnitKind]int), Spatial: make(map[UnitKind]int)}
	for _, f := range m.Funcs {
		fs := ms.Funcs[f]
		for _, blk := range f.Blocks {
			counts := make(map[UnitKind]int)
			for _, in := range blk.Instrs {
				if u, ok := unitOf(in); ok {
					counts[u]++
					b.Spatial[u]++
				}
				if !in.Ty.IsVoid() {
					b.Registers++
				}
			}
			states := 1
			if fs != nil {
				if bs := fs.Blocks[blk]; bs != nil {
					states = bs.States
				}
			}
			for u, n := range counts {
				need := (n + states - 1) / states
				if need > b.Shared[u] {
					b.Shared[u] = need
				}
			}
		}
	}
	return b
}

// Report renders the binding as an aligned table.
func (b *Binding) Report() string {
	kinds := make([]string, 0, len(b.Spatial))
	for k := range b.Spatial {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %8s\n", "unit", "spatial", "shared")
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%-12s %8d %8d\n", k, b.Spatial[UnitKind(k)], b.Shared[UnitKind(k)])
	}
	fmt.Fprintf(&sb, "%-12s %8d\n", "registers", b.Registers)
	return sb.String()
}
