package hls_test

import (
	"errors"
	"fmt"
	"testing"

	"autophase/internal/hls"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// preludes are the three pipeline shapes the differential sweep runs every
// benchmark through: bare mem2reg, a canonicalization pipeline, and the
// full -O3 reference sequence.
var preludes = []struct {
	name string
	seq  []int
}{
	{"mem2reg", []int{38}},
	{"canonicalized", []int{38, 31, 30, 29, 23, 30}},
	{"o3", passes.O3Sequence},
}

func TestParseEngine(t *testing.T) {
	for _, e := range []hls.Engine{hls.EngineAuto, hls.EngineStatic, hls.EngineVM, hls.EngineInterp} {
		got, err := hls.ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := hls.ParseEngine("jit"); err == nil {
		t.Error("ParseEngine accepted an unknown engine name")
	}
}

// diffEngines profiles m under the pinned-interpreter reference and the
// pinned VM, demanding identical cycles/steps/exit/area or identical error
// classes. It returns the interpreter report for further checks.
func diffEngines(t *testing.T, label string, m *ir.Module) *hls.Report {
	t.Helper()
	iref, ierr := hls.Profile(m, hls.DefaultConfig, interp.DefaultLimits)
	vprof := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineVM})
	vrep, verr := vprof.Profile(m)
	if errors.Is(verr, hls.ErrEngineDeclined) {
		t.Fatalf("%s: VM declined to lower a benchmark-shaped module: %v", label, verr)
	}
	if (verr == nil) != (ierr == nil) {
		t.Fatalf("%s: vm err=%v, interp err=%v", label, verr, ierr)
	}
	if verr != nil {
		for _, cls := range []error{
			interp.ErrStepLimit, interp.ErrDepthLimit, interp.ErrMemLimit,
			interp.ErrDivByZero, interp.ErrOOB, interp.ErrNoMain,
			interp.ErrUnreach, interp.ErrDeadline,
		} {
			if errors.Is(ierr, cls) != errors.Is(verr, cls) {
				t.Fatalf("%s: error class mismatch: vm %v, interp %v", label, verr, ierr)
			}
		}
		return nil
	}
	if vrep.Cycles != iref.Cycles || vrep.Steps != iref.Steps ||
		vrep.Exit != iref.Exit || vrep.AreaLUT != iref.AreaLUT {
		t.Fatalf("%s: vm report {cycles=%d steps=%d exit=%d area=%d} != interp {cycles=%d steps=%d exit=%d area=%d}",
			label, vrep.Cycles, vrep.Steps, vrep.Exit, vrep.AreaLUT,
			iref.Cycles, iref.Steps, iref.Exit, iref.AreaLUT)
	}
	if vrep.Engine != hls.EngineVM {
		t.Fatalf("%s: pinned VM report tagged %v", label, vrep.Engine)
	}
	return iref
}

// TestVMDifferentialSweep: the bytecode VM agrees with the tree-walking
// interpreter on cycles, steps and exit value over all nine benchmarks
// under all three pipeline shapes, and the three-engine cross-check passes.
func TestVMDifferentialSweep(t *testing.T) {
	for _, name := range progen.BenchmarkNames {
		for _, pl := range preludes {
			label := name + "/" + pl.name
			m := progen.Benchmark(name)
			passes.Apply(m, pl.seq)
			iref := diffEngines(t, label, m)
			if iref == nil {
				t.Fatalf("%s: benchmark unexpectedly failed to execute", label)
			}
			// The cross-check engine runs all three and errors on any
			// cycle/step/exit/trace divergence.
			crep, err := hls.NewProfiler(hls.ProfileOptions{CrossCheck: true}).Profile(m)
			if err != nil {
				t.Fatalf("%s: three-engine cross-check: %v", label, err)
			}
			if crep.Cycles != iref.Cycles || crep.Steps != iref.Steps || crep.Exit != iref.Exit {
				t.Fatalf("%s: cross-check report diverges from interpreter reference", label)
			}
		}
	}
}

// TestVMDifferentialProgen covers generator-shaped programs (wrapping
// arithmetic, byte casts, deep nesting) beyond the nine benchmarks.
func TestVMDifferentialProgen(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		m := progen.Generate(seed, progen.DefaultGen)
		passes.Apply(m, []int{38})
		diffEngines(t, fmt.Sprintf("progen-%d", seed), m)
	}
}

// TestAutoEngineSelection: Auto answers statically when it can, otherwise
// through the VM, otherwise through the interpreter — and says which.
func TestAutoEngineSelection(t *testing.T) {
	prof := hls.NewProfiler(hls.ProfileOptions{})

	rep, err := prof.Profile(mem2reg(staticFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != hls.EngineStatic || !rep.Static {
		t.Fatalf("static fixture answered by %v (static=%v)", rep.Engine, rep.Static)
	}

	rep, err = prof.Profile(dynamicFixture())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != hls.EngineVM {
		t.Fatalf("dynamic fixture answered by %v, want the VM", rep.Engine)
	}

	st := prof.Stats()
	if st.StaticHits != 1 || st.VMHits != 1 || st.InterpHits != 0 {
		t.Fatalf("stats = %+v, want exactly one static and one VM hit", st)
	}

	prof.SetEngine(hls.EngineInterp)
	if _, err := prof.Profile(dynamicFixture()); err != nil {
		t.Fatal(err)
	}
	if st := prof.Stats(); st.InterpHits != 1 {
		t.Fatalf("pinned interpreter did not count: %+v", st)
	}
}

// TestPinnedEngineDeclines: a pinned engine that cannot handle the module
// fails with ErrEngineDeclined instead of silently falling back.
func TestPinnedEngineDeclines(t *testing.T) {
	static := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineStatic})
	if _, err := static.Profile(dynamicFixture()); !errors.Is(err, hls.ErrEngineDeclined) {
		t.Fatalf("pinned static on a dynamic module: %v, want ErrEngineDeclined", err)
	}

	// A call site passing fewer arguments than the callee declares is
	// interpretable (missing params read as undefined) but not lowerable.
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  ret i32 7
}

define i32 @main() {
entry:
  %r = call i32 @f(1)
  ret i32 %r
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vm := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineVM})
	if _, err := vm.Profile(m); !errors.Is(err, hls.ErrEngineDeclined) {
		t.Fatalf("pinned VM on an unlowerable module: %v, want ErrEngineDeclined", err)
	}

	// Auto on the same module must fall back to the interpreter, not fail.
	auto := hls.NewProfiler(hls.ProfileOptions{})
	rep, err := auto.Profile(m)
	if err != nil {
		t.Fatalf("auto fallback: %v", err)
	}
	if rep.Engine != hls.EngineInterp || rep.Exit != 7 {
		t.Fatalf("auto fallback report: engine=%v exit=%d", rep.Engine, rep.Exit)
	}
}

// TestDeprecatedWrappersAgree: the kept-one-release Profile/ProfileFast/
// ProfileChecked wrappers answer exactly like the Profiler surface.
func TestDeprecatedWrappersAgree(t *testing.T) {
	m := mem2reg(progen.Benchmark("qsort"))
	fast, err := hls.ProfileFast(m, hls.DefaultConfig, interp.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := hls.ProfileChecked(m, hls.DefaultConfig, interp.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := hls.Profile(m, hls.DefaultConfig, interp.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles != slow.Cycles || checked.Cycles != slow.Cycles {
		t.Fatalf("wrapper disagreement: fast=%d checked=%d interp=%d",
			fast.Cycles, checked.Cycles, slow.Cycles)
	}
}

// FuzzVMDifferential drives random pass pipelines over benchmark and
// generated programs (the FuzzApplyVerify recipe) and cross-checks the
// bytecode VM against the interpreter on the result. A VM decline is
// acceptable; a disagreement never is.
func FuzzVMDifferential(f *testing.F) {
	f.Add(int64(1), []byte{38, 31, 30})     // mem2reg, simplifycfg, instcombine
	f.Add(int64(7), []byte{38, 7, 28, 32})  // mem2reg, gvn, adce, dse
	f.Add(int64(42), []byte{43, 26, 8, 0})  // sroa, early-cse, jump-threading, corr-prop
	f.Add(int64(-3), []byte{5, 23, 36, 33}) // sccp, loop-rotate, licm, loop-unroll
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		var m *ir.Module
		if seed%4 == 0 {
			bs := progen.Benchmarks()
			m = bs[int(uint64(seed)%uint64(len(bs)))].Clone()
		} else {
			m = progen.Generate(seed, progen.DefaultGen)
		}
		seq := make([]int, 0, len(raw))
		for _, b := range raw {
			idx := int(b) % passes.NumActions
			if idx == passes.TerminateIndex {
				continue
			}
			seq = append(seq, idx)
		}
		passes.Apply(m, seq)

		iref, ierr := hls.Profile(m, hls.DefaultConfig, interp.DefaultLimits)
		vrep, verr := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineVM}).Profile(m)
		if errors.Is(verr, hls.ErrEngineDeclined) {
			return
		}
		if (verr == nil) != (ierr == nil) {
			t.Fatalf("vm err=%v, interp err=%v", verr, ierr)
		}
		if verr != nil {
			return
		}
		if vrep.Cycles != iref.Cycles || vrep.Steps != iref.Steps || vrep.Exit != iref.Exit {
			t.Fatalf("vm {cycles=%d steps=%d exit=%d} != interp {cycles=%d steps=%d exit=%d}",
				vrep.Cycles, vrep.Steps, vrep.Exit, iref.Cycles, iref.Steps, iref.Exit)
		}
	})
}
