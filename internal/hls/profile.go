package hls

import (
	"fmt"

	"autophase/internal/interp"
	"autophase/internal/ir"
)

// Report is the clock-cycle profiler's estimate for one module, combining
// the static schedule with the dynamic block-frequency profile — the LegUp
// fast profiler's cycles = Σ states(b)·count(b) formula.
type Report struct {
	Cycles  int64 // estimated total clock cycles of the circuit
	AreaLUT int   // functional-unit area estimate
	Steps   int   // interpreter steps (software-trace length)
	Exit    int64 // program exit value (for validation)
	// Static marks a report derived by the SCEV-based static estimator
	// instead of an interpreter run. On static reports Exit is only
	// populated when the return value is itself statically determined.
	Static bool
	// Engine records which backend produced the report (EngineStatic,
	// EngineVM or EngineInterp; under CrossCheck, the engine EngineAuto
	// would have chosen).
	Engine Engine
}

// Profile schedules the module and executes it under the tree-walking
// interpreter to estimate the clock-cycle count of the synthesized circuit.
// It returns an error when the program fails to execute (trap, limit),
// which search drivers treat as an invalid candidate.
//
// Deprecated: use Profiler with EngineInterp pinned; Profile remains as the
// interpreter engine's implementation.
func Profile(m *ir.Module, cfg Config, lim interp.Limits) (*Report, error) {
	rep, _, err := interpProfile(m, cfg, lim)
	return rep, err
}

// interpProfile is the interpreter engine: it returns the raw interp.Result
// alongside the report so the cross-check can compare print traces.
func interpProfile(m *ir.Module, cfg Config, lim interp.Limits) (*Report, *interp.Result, error) {
	sched := Schedule(m, cfg)
	res, err := interp.Run(m, lim)
	if err != nil {
		return nil, nil, fmt.Errorf("hls profile: %w", err)
	}
	var cycles int64
	for b, n := range res.Blocks {
		cycles += n * int64(sched.StatesOf(b))
	}
	// Burst memset engine: one cycle per cell beyond the issue state.
	cycles += res.MemsetCells
	// Return handshake per call.
	for _, n := range res.Calls {
		cycles += n
	}
	return &Report{
		Cycles:  cycles,
		AreaLUT: sched.Area(),
		Steps:   res.Steps,
		Exit:    res.Exit,
		Engine:  EngineInterp,
	}, res, nil
}

// Cycles is a convenience wrapper returning only the cycle estimate.
func Cycles(m *ir.Module, cfg Config) (int64, error) {
	r, err := Profile(m, cfg, interp.DefaultLimits)
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}
