package hls

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"autophase/internal/artifact"
	"autophase/internal/faults"
	"autophase/internal/interp"
	"autophase/internal/ir"
	"autophase/internal/vm"
)

// Engine selects which profiling backend answers a Profile call.
type Engine int

// The profiling engines. EngineAuto is the production policy — cheapest
// exact engine first: static estimation when the module is in the
// statically-determined fragment, the bytecode VM when the module lowers,
// the tree-walking interpreter otherwise. The other values pin one engine
// for debugging and benchmarking; a pinned engine that cannot handle the
// module fails with ErrEngineDeclined instead of falling back.
const (
	EngineAuto Engine = iota
	EngineStatic
	EngineVM
	EngineInterp
)

var engineNames = [...]string{"auto", "static", "vm", "interp"}

// String returns the engine's flag-spelling ("auto", "static", "vm",
// "interp").
func (e Engine) String() string {
	if e >= 0 && int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("hls.Engine(%d)", int(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	for i, n := range engineNames {
		if s == n {
			return Engine(i), nil
		}
	}
	return EngineAuto, fmt.Errorf("hls: unknown engine %q (known: auto, static, vm, interp)", s)
}

// ErrEngineDeclined reports that a pinned engine cannot handle the module
// (EngineStatic on a module outside the static fragment, EngineVM on a
// module the lowerer declines). EngineAuto never returns it.
var ErrEngineDeclined = errors.New("hls: pinned engine declined the module")

// ProfileOptions configures a Profiler. The zero value means: paper-default
// synthesis constraints, default interpreter limits, automatic engine
// selection, no cross-checking.
type ProfileOptions struct {
	// Config sets the synthesis constraints; the zero value means
	// DefaultConfig.
	Config Config
	// Limits bound each profile execution; the zero value means
	// interp.DefaultLimits.
	Limits interp.Limits
	// Engine pins a profiling backend; EngineAuto (the zero value) selects
	// static → VM → interpreter per module.
	Engine Engine
	// CrossCheck runs every applicable engine on every profile and errors
	// on any cycle/step/exit/trace disagreement (the sanitizer mode).
	CrossCheck bool
}

// Profiler is the unified profiling surface: one object owning the
// synthesis config, the execution limits, the engine policy, and the
// per-config cache of VM-lowered programs. It replaces the former
// Profile / ProfileFast / ProfileChecked / StaticProfile call sprawl; those
// remain as thin deprecated wrappers for one release.
//
// A Profiler is safe for concurrent use. The synthesis config is fixed at
// construction (the lowered-program cache folds per-block schedule weights,
// so the cache is only valid for one config); limits, engine and
// cross-check mode may be changed at runtime.
type Profiler struct {
	cfg    Config
	cfgKey uint64 // artifact.HashString of the rendered config
	cache  *vm.Cache

	mu     sync.RWMutex
	lim    interp.Limits   // guarded by mu
	engine Engine          // guarded by mu
	check  bool            // guarded by mu
	store  *artifact.Store // guarded by mu; nil = no persistence
	limKey uint64          // guarded by mu; artifact.HashString of the rendered limits

	staticHits atomic.Int64
	vmHits     atomic.Int64
	interpHits atomic.Int64
	diskHits   atomic.Int64
	bcDiskHits atomic.Int64
}

// ProfilerStats counts which engine answered successful profiles, plus the
// cache tiers underneath them: the persistent artifact store (profiles
// answered without any engine running, bytecode restored without
// re-lowering) and the in-memory lowered-program cache.
type ProfilerStats struct {
	StaticHits int64
	VMHits     int64
	InterpHits int64

	// DiskHits are profiles answered from the artifact store — no engine
	// ran at all. BytecodeDiskHits are lowered programs restored from disk
	// (decode + re-verify instead of schedule + lower + verify).
	DiskHits         int64
	BytecodeDiskHits int64
	// DiskWrites/DiskBytes/DiskCorrupt mirror the attached store's
	// counters (zero when no store is attached).
	DiskWrites  int64
	DiskBytes   int64
	DiskCorrupt int64

	// Lower* are the in-memory vm.Cache counters: lowering results served
	// (programs and cached declines), misses, and FIFO evictions.
	LowerHits      int64
	LowerDeclines  int64
	LowerMisses    int64
	LowerEvictions int64
}

// NewProfiler builds a Profiler from opts (zero-value fields take the
// documented defaults).
func NewProfiler(opts ProfileOptions) *Profiler {
	if opts.Config == (Config{}) {
		opts.Config = DefaultConfig
	}
	if opts.Limits == (interp.Limits{}) {
		opts.Limits = interp.DefaultLimits
	}
	return &Profiler{
		cfg:    opts.Config,
		cfgKey: artifact.HashString(fmt.Sprintf("%#v", opts.Config)),
		cache:  vm.NewCache(0),
		lim:    opts.Limits,
		limKey: artifact.HashString(fmt.Sprintf("%#v", opts.Limits)),
		engine: opts.Engine,
		check:  opts.CrossCheck,
	}
}

// SetArtifacts attaches (or with nil detaches) a persistent artifact store
// as the read-through/write-behind tier beneath this profiler: profile
// verdicts and lowered bytecode for previously seen (fingerprint, config,
// limits, engine-policy) keys are answered from disk without running any
// engine. The bit-identical contract is preserved by construction — every
// stored value is a pure function of its key, errors are never persisted,
// and the sanitizer (CrossCheck) mode bypasses the store entirely.
func (p *Profiler) SetArtifacts(st *artifact.Store) {
	p.mu.Lock()
	p.store = st
	p.mu.Unlock()
}

// Config returns the synthesis constraints the profiler was built with.
func (p *Profiler) Config() Config { return p.cfg }

// Limits returns the current execution limits.
func (p *Profiler) Limits() interp.Limits {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.lim
}

// SetLimits replaces the execution limits for subsequent profiles.
func (p *Profiler) SetLimits(lim interp.Limits) {
	p.mu.Lock()
	p.lim = lim
	p.limKey = artifact.HashString(fmt.Sprintf("%#v", lim))
	p.mu.Unlock()
}

// Engine returns the current engine policy.
func (p *Profiler) Engine() Engine {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.engine
}

// SetEngine changes the engine policy for subsequent profiles. No caches
// need invalidating: all engines produce bit-identical reports wherever
// they overlap (that is the contract CrossCheck enforces).
func (p *Profiler) SetEngine(e Engine) {
	p.mu.Lock()
	p.engine = e
	p.mu.Unlock()
}

// SetCrossCheck toggles the run-every-engine sanitizer mode.
func (p *Profiler) SetCrossCheck(on bool) {
	p.mu.Lock()
	p.check = on
	p.mu.Unlock()
}

// Stats snapshots the per-engine success counters and the cache tiers.
func (p *Profiler) Stats() ProfilerStats {
	st := ProfilerStats{
		StaticHits:       p.staticHits.Load(),
		VMHits:           p.vmHits.Load(),
		InterpHits:       p.interpHits.Load(),
		DiskHits:         p.diskHits.Load(),
		BytecodeDiskHits: p.bcDiskHits.Load(),
	}
	cs := p.cache.Stats()
	st.LowerHits = cs.Hits
	st.LowerDeclines = cs.Declines
	st.LowerMisses = cs.Misses
	st.LowerEvictions = cs.Evictions
	p.mu.RLock()
	store := p.store
	p.mu.RUnlock()
	if store != nil {
		ds := store.Stats()
		st.DiskWrites = ds.Writes
		st.DiskBytes = ds.Bytes
		st.DiskCorrupt = ds.Corrupt
	}
	return st
}

// Profile estimates the clock-cycle count of the circuit synthesized from
// m, dispatching to the configured engine. Errors mean the program failed
// to execute (trap, limit) or — under CrossCheck — that two engines
// disagreed; search drivers treat both as invalid candidates.
func (p *Profiler) Profile(m *ir.Module) (*Report, error) {
	return p.profile(m, ir.Fingerprint{}, false)
}

// ProfileFP is Profile for callers that already hold m's fingerprint (the
// compile cache does), sparing the VM-program cache a re-hash.
func (p *Profiler) ProfileFP(m *ir.Module, fp ir.Fingerprint) (*Report, error) {
	return p.profile(m, fp, true)
}

// profile carries the profile-err fault-injection point: one draw per
// profile operation, regardless of which engine answers.
func (p *Profiler) profile(m *ir.Module, fp ir.Fingerprint, haveFP bool) (*Report, error) {
	if err := faults.Fail(faults.ProfileErr); err != nil {
		return nil, fmt.Errorf("hls profile: %w", err)
	}
	p.mu.RLock()
	engine, lim, check := p.engine, p.lim, p.check
	store, limKey := p.store, p.limKey
	p.mu.RUnlock()
	if check {
		// The sanitizer's whole point is running the engines; disk results
		// would defeat it. (The fault-injection draw above already happened,
		// so draw streams are identical with and without a store.)
		return p.crossProfile(m, fp, haveFP, lim)
	}
	var diskKey artifact.Key
	if store != nil {
		if !haveFP {
			fp = m.Fingerprint()
			haveFP = true
		}
		// The engine policy is part of the key: a pinned engine must see
		// exactly the profiles (and the declines-as-errors) it would compute
		// itself, so records written under one policy never answer another.
		diskKey = artifact.Key{
			FP:   fp,
			Kind: artifact.KindProfile,
			Aux:  artifact.MixAux(p.cfgKey, limKey, uint64(engine)),
		}
		if data, ok := store.Get(diskKey); ok {
			if rep, ok := decodeReport(data); ok {
				p.diskHits.Add(1)
				return rep, nil
			}
			store.NoteCorrupt(diskKey)
		}
	}
	rep, err := p.runEngine(m, fp, haveFP, engine, lim)
	if err == nil && store != nil {
		// Only successes persist: an error is not a pure function of the key
		// in any way the store should vouch for (and declines must re-decline
		// live so a policy change behaves identically warm and cold).
		store.Put(diskKey, encodeReport(rep))
	}
	return rep, err
}

// runEngine dispatches one profile to the configured engine policy (the
// live, non-disk path).
func (p *Profiler) runEngine(m *ir.Module, fp ir.Fingerprint, haveFP bool, engine Engine, lim interp.Limits) (*Report, error) {
	switch engine {
	case EngineStatic:
		rep, ok := StaticProfile(m, p.cfg, lim)
		if !ok {
			return nil, fmt.Errorf("hls profile: %w: static", ErrEngineDeclined)
		}
		p.staticHits.Add(1)
		return rep, nil
	case EngineVM:
		prog, err := p.lowered(m, fp, haveFP)
		if err != nil {
			return nil, fmt.Errorf("hls profile: %w: %v", ErrEngineDeclined, err)
		}
		rep, err := runVM(prog, lim)
		if err == nil {
			p.vmHits.Add(1)
		}
		return rep, err
	case EngineInterp:
		rep, _, err := interpProfile(m, p.cfg, lim)
		if err == nil {
			p.interpHits.Add(1)
		}
		return rep, err
	default: // EngineAuto
		if rep, ok := StaticProfile(m, p.cfg, lim); ok {
			p.staticHits.Add(1)
			return rep, nil
		}
		if prog, err := p.lowered(m, fp, haveFP); err == nil {
			// A VM runtime error is a property of the program (trap,
			// limit), not of the engine: the interpreter would fail the
			// same way, so there is no fallback past this point.
			rep, err := runVM(prog, lim)
			if err == nil {
				p.vmHits.Add(1)
			}
			return rep, err
		}
		rep, _, err := interpProfile(m, p.cfg, lim)
		if err == nil {
			p.interpHits.Add(1)
		}
		return rep, err
	}
}

// lowered returns m's cached VM program, lowering (and verifying) on miss.
// Declines are cached too: a module outside the lowerable fragment declines
// identically every time. With an artifact store attached, bytecode sits
// between the in-memory cache and the lowerer: a disk hit is decoded and
// re-verified (untrusted bytes never run unproven), an undecodable or
// unverifiable record is dropped as corrupt, and fresh lowerings are
// written behind. Declines are never persisted — they are cheap to
// recompute and policy-sensitive.
func (p *Profiler) lowered(m *ir.Module, fp ir.Fingerprint, haveFP bool) (*vm.Program, error) {
	if !haveFP {
		fp = m.Fingerprint()
	}
	if prog, err, ok := p.cache.Get(fp); ok {
		return prog, err
	}
	p.mu.RLock()
	store := p.store
	p.mu.RUnlock()
	var diskKey artifact.Key
	if store != nil {
		// Bytecode depends on the schedule config (folded block weights) but
		// not on limits or engine policy.
		diskKey = artifact.Key{FP: fp, Kind: artifact.KindBytecode, Aux: p.cfgKey}
		if data, ok := store.Get(diskKey); ok {
			if prog, derr := vm.Decode(data); derr == nil && vm.Verify(prog) == nil {
				p.bcDiskHits.Add(1)
				p.cache.Put(fp, prog, nil)
				return prog, nil
			}
			store.NoteCorrupt(diskKey)
		}
	}
	prog, err := lowerModule(m, p.cfg)
	p.cache.Put(fp, prog, err)
	if err == nil && store != nil {
		store.Put(diskKey, vm.Encode(prog))
	}
	return prog, err
}

// The profile-record payload: four little-endian i64s (cycles, area,
// steps, exit) plus the static flag and producing engine. 34 bytes, no
// framing of its own (the store's record checksum covers it); any other
// length is corruption.
const reportRecLen = 34

func encodeReport(rep *Report) []byte {
	buf := make([]byte, reportRecLen)
	binary.LittleEndian.PutUint64(buf[0:], uint64(rep.Cycles))
	binary.LittleEndian.PutUint64(buf[8:], uint64(rep.AreaLUT))
	binary.LittleEndian.PutUint64(buf[16:], uint64(rep.Steps))
	binary.LittleEndian.PutUint64(buf[24:], uint64(rep.Exit))
	if rep.Static {
		buf[32] = 1
	}
	buf[33] = byte(rep.Engine)
	return buf
}

func decodeReport(data []byte) (*Report, bool) {
	if len(data) != reportRecLen || data[32] > 1 || data[33] > byte(EngineInterp) {
		return nil, false
	}
	return &Report{
		Cycles:  int64(binary.LittleEndian.Uint64(data[0:])),
		AreaLUT: int(binary.LittleEndian.Uint64(data[8:])),
		Steps:   int(binary.LittleEndian.Uint64(data[16:])),
		Exit:    int64(binary.LittleEndian.Uint64(data[24:])),
		Static:  data[32] == 1,
		Engine:  Engine(data[33]),
	}, true
}

// lowerModule schedules m under cfg and folds the per-block FSM state
// counts into the lowered instruction stream, so executing the program IS
// computing the profile.
func lowerModule(m *ir.Module, cfg Config) (*vm.Program, error) {
	sched := Schedule(m, cfg)
	prog, err := vm.Lower(m, sched.StatesOf)
	if err != nil {
		return nil, err
	}
	if err := vm.Verify(prog); err != nil {
		return nil, err
	}
	prog.Area = sched.Area()
	return prog, nil
}

// runVM executes a lowered program; its Cycles counter already carries the
// full estimate (folded block weights + memset cells + call handshakes).
func runVM(prog *vm.Program, lim interp.Limits) (*Report, error) {
	res, err := vm.Run(prog, lim)
	if err != nil {
		return nil, fmt.Errorf("hls profile: %w", err)
	}
	return &Report{
		Cycles:  res.Cycles,
		AreaLUT: prog.Area,
		Steps:   res.Steps,
		Exit:    res.Exit,
		Engine:  EngineVM,
	}, nil
}

// interpErrClasses are the interpreter's sentinel errors, shared by the VM;
// under CrossCheck two failing engines must fail in the same class.
var interpErrClasses = []error{
	interp.ErrStepLimit,
	interp.ErrDepthLimit,
	interp.ErrMemLimit,
	interp.ErrDivByZero,
	interp.ErrOOB,
	interp.ErrNoMain,
	interp.ErrUnreach,
	interp.ErrDeadline,
}

func sameErrClass(a, b error) bool {
	for _, cls := range interpErrClasses {
		if errors.Is(a, cls) != errors.Is(b, cls) {
			return false
		}
	}
	return true
}

// crossProfile runs every applicable engine and errors on any divergence:
// the interpreter is ground truth, the VM must match it on cycles, steps,
// exit value, print trace, and error class, and the static estimator keeps
// its original cycle/step contract. The returned report is the
// interpreter's, tagged with the engine EngineAuto would have chosen.
func (p *Profiler) crossProfile(m *ir.Module, fp ir.Fingerprint, haveFP bool, lim interp.Limits) (*Report, error) {
	static, sok := StaticProfile(m, p.cfg, lim)

	var (
		vmRes *vm.Result
		vmErr error
		vmOK  bool // module lowered; the VM engine applies
	)
	if prog, lerr := p.lowered(m, fp, haveFP); lerr == nil {
		vmOK = true
		vmRes, vmErr = vm.Run(prog, lim)
	}

	rep, ires, err := interpProfile(m, p.cfg, lim)

	if vmOK {
		switch {
		case vmErr == nil && err == nil:
			if vmRes.Cycles != rep.Cycles || vmRes.Steps != rep.Steps ||
				vmRes.Exit != rep.Exit || !traceEqual(vmRes.Trace, ires.Trace) {
				return rep, fmt.Errorf("hls vm profile: cycles %d / steps %d / exit %d, interpreter got cycles %d / steps %d / exit %d",
					vmRes.Cycles, vmRes.Steps, vmRes.Exit, rep.Cycles, rep.Steps, rep.Exit)
			}
		case vmErr == nil && err != nil:
			return rep, fmt.Errorf("hls vm profile: succeeded but interpreter failed: %w", err)
		case vmErr != nil && err == nil:
			return rep, fmt.Errorf("hls vm profile: failed (%v) but interpreter succeeded", vmErr)
		default:
			if !sameErrClass(vmErr, err) {
				return rep, fmt.Errorf("hls vm profile: error %v, interpreter error %v", vmErr, err)
			}
		}
	}

	if !sok {
		if err != nil {
			return rep, err
		}
		if vmOK {
			rep.Engine = EngineVM
			p.vmHits.Add(1)
		} else {
			rep.Engine = EngineInterp
			p.interpHits.Add(1)
		}
		return rep, nil
	}
	if err != nil {
		return rep, fmt.Errorf("hls static profile: claimed success but interpreter failed: %w", err)
	}
	if static.Cycles != rep.Cycles || static.Steps != rep.Steps {
		return rep, fmt.Errorf("hls static profile: cycles %d / steps %d, interpreter got cycles %d / steps %d",
			static.Cycles, static.Steps, rep.Cycles, rep.Steps)
	}
	rep.Static = true
	rep.Engine = EngineStatic
	p.staticHits.Add(1)
	return rep, nil
}

func traceEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
