package hls

import (
	"fmt"
	"math"

	"autophase/internal/analysis"
	"autophase/internal/interp"
	"autophase/internal/ir"
)

// This file is the static cycle estimator: for programs whose basic-block
// execution frequencies are fully determined by closed-form loop trip counts
// and statically decided branches, the interpreter run in Profile can be
// replaced by arithmetic over the SCEV results. The accounting reproduces
// interp.Run exactly — same per-block counts, step totals, memset cell
// counter and per-call handshakes — so that wherever StaticProfile claims
// applicability its Report agrees with the interpreter's to the cycle.
// Every construct it cannot model exactly (data-dependent branches,
// unprovable memory accesses, possible traps, limit overruns, recursion)
// makes it decline, and callers fall back to the interpreter.

// ptrOffField is the unsigned width of the pointer offset field in the
// interpreter's pointer encoding (interp's offBits). An access is provably
// in bounds only when every intermediate GEP offset stays inside the field,
// so that encode/decode round-trips are lossless along the whole chain.
const ptrOffField = 1<<28 - 1

// funcStatic is the per-invocation summary of one function analyzed in one
// calling context (a vector of parameter intervals): how often each block
// runs, what the run costs, and whom it calls. Within a context the counts
// must be invocation-independent — any branch whose outcome the value
// ranges cannot pin down makes the analysis fail — but the same function
// may admit summaries in one context and not another, which is what lets
// call-heavy programs stay static: the callee is re-analyzed per call site
// with the argument ranges that site actually supplies.
type funcStatic struct {
	fn         *ir.Func
	key        ctxKey
	freq       map[*ir.Block]int64   // block executions per invocation
	steps      int64                 // interpreter steps per invocation (own frame only)
	msetCells  int64                 // memset cell-counter delta per invocation
	allocCells int64                 // memory cells allocated per invocation
	calls      map[*funcStatic]int64 // callee-context invocations per invocation
	ret        analysis.Interval     // range of the returned value
}

// ctxKey identifies one (function, parameter-interval-vector) analysis
// context; the hints render canonically so equal contexts share a summary.
type ctxKey struct {
	fn    *ir.Func
	hints string
}

// staticAnalyzer memoizes per-context summaries while walking the call
// graph; a nil memo entry records an analysis failure in that context.
// visiting is keyed by function, not context: a cycle through any contexts
// of the same function is recursion, and recursion depth is data-dependent.
type staticAnalyzer struct {
	memo     map[ctxKey]*funcStatic
	visiting map[*ir.Func]bool
}

// canonHints pads or trims hints to exactly one interval per parameter
// (missing entries are Full), so context keys are canonical.
func canonHints(f *ir.Func, hints []analysis.Interval) []analysis.Interval {
	out := make([]analysis.Interval, len(f.Params))
	for i := range out {
		if i < len(hints) {
			out[i] = hints[i]
		} else {
			out[i] = analysis.Full
		}
	}
	return out
}

func hintString(hints []analysis.Interval) string {
	s := ""
	for _, h := range hints {
		s += h.String()
	}
	return s
}

// StaticProfile computes the Report of Profile without running the
// interpreter, when the module lies in the statically-determined fragment:
// all executed loops have closed-form finite trip counts, all other branch
// decisions follow from the value ranges, every executed memory access and
// division is provably safe, there is no recursion, and the execution fits
// the limits. It reports ok=false otherwise; it never guesses.
func StaticProfile(m *ir.Module, cfg Config, lim interp.Limits) (*Report, bool) {
	main := m.Func("main")
	if main == nil {
		return nil, false
	}
	sa := &staticAnalyzer{
		memo:     make(map[ctxKey]*funcStatic),
		visiting: make(map[*ir.Func]bool),
	}
	// The interpreter invokes main with zero arguments.
	hints := make([]analysis.Interval, len(main.Params))
	for i := range hints {
		hints[i] = analysis.Point(0)
	}
	fsMain, ok := sa.analyze(main, hints)
	if !ok {
		return nil, false
	}
	// Invocation counts over the (acyclic) context DAG, callers first. A
	// function analyzed under two different argument contexts appears as two
	// nodes, each carrying its own frequencies and costs.
	order := sa.topo(fsMain)
	inv := map[*funcStatic]int64{fsMain: 1}
	for _, fs := range order {
		n := inv[fs]
		if n == 0 {
			continue
		}
		for cs, c := range fs.calls {
			nc, ok1 := mulChk(n, c)
			t, ok2 := addChk(inv[cs], nc)
			if !ok1 || !ok2 {
				return nil, false
			}
			inv[cs] = t
		}
	}
	// Call depth: the longest invocation chain must fit MaxDepth (main runs
	// at depth 0).
	if sa.height(fsMain, make(map[*funcStatic]int64)) > int64(lim.MaxDepth) {
		return nil, false
	}
	// Steps, cells and the memset counter, scaled by invocation counts.
	var steps, cells, mset int64
	for _, g := range m.Globals {
		cells += int64(g.NumElems())
	}
	for _, fs := range order {
		n := inv[fs]
		if n == 0 {
			continue
		}
		var ok1, ok2, ok3 bool
		var d int64
		if d, ok1 = mulChk(n, fs.steps); ok1 {
			steps, ok1 = addChk(steps, d)
		}
		if d, ok2 = mulChk(n, fs.allocCells); ok2 {
			cells, ok2 = addChk(cells, d)
		}
		if d, ok3 = mulChk(n, fs.msetCells); ok3 {
			mset, ok3 = addChk(mset, d)
		}
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
	}
	if steps > int64(lim.MaxSteps) || cells > int64(lim.MaxCells) {
		return nil, false // the interpreter would trip a limit; let it
	}
	// cycles = Σ freq(b)·states(b) + memset cells + one handshake per call.
	sched := Schedule(m, cfg)
	cycles := mset
	for _, fs := range order {
		n := inv[fs]
		if n == 0 {
			continue
		}
		per := int64(0)
		okAll := true
		for b, c := range fs.freq {
			var d int64
			var ok bool
			if d, ok = mulChk(c, int64(sched.StatesOf(b))); ok {
				per, ok = addChk(per, d)
			}
			okAll = okAll && ok
		}
		var d int64
		var ok bool
		if d, ok = mulChk(n, per); ok {
			cycles, ok = addChk(cycles, d)
		}
		if c, ok2 := addChk(cycles, n); ok && ok2 {
			cycles = c // return handshake per invocation, main included
		} else {
			okAll = false
		}
		if !okAll {
			return nil, false
		}
	}
	rep := &Report{
		Cycles:  cycles,
		AreaLUT: sched.Area(),
		Steps:   int(steps),
		Static:  true,
		Engine:  EngineStatic,
	}
	// Exit is populated only when the returned value is itself a static
	// point; frequency-exactness does not require value-exactness.
	if fsMain.ret.IsPoint() {
		rep.Exit = fsMain.ret.Lo
	}
	return rep, true
}

// ProfileFast profiles with automatic engine selection (static estimate
// when the module admits one, the bytecode VM when it lowers, the
// interpreter otherwise). It carries the profile-err fault-injection point:
// one draw per profile operation, regardless of which engine answers.
//
// Deprecated: use Profiler (NewProfiler(ProfileOptions{Config: cfg,
// Limits: lim}).Profile(m)); kept one release while callers migrate. Note
// that a long-lived Profiler also reuses its lowered-program cache, which
// this per-call wrapper cannot.
func ProfileFast(m *ir.Module, cfg Config, lim interp.Limits) (*Report, error) {
	return NewProfiler(ProfileOptions{Config: cfg, Limits: lim}).Profile(m)
}

// ProfileChecked runs every applicable engine and errors when any of them
// disagrees with the interpreter — the sanitizer cross-check for the fast
// paths. The returned report is the interpreter's.
//
// Deprecated: use Profiler with ProfileOptions.CrossCheck; kept one release
// while callers migrate.
func ProfileChecked(m *ir.Module, cfg Config, lim interp.Limits) (*Report, error) {
	return NewProfiler(ProfileOptions{Config: cfg, Limits: lim, CrossCheck: true}).Profile(m)
}

// Recheck profiles m from scratch on the fully cross-checked path and
// errors when the result disagrees with the expected cycle count or area —
// the differential probe for results shared between pass sequences by IR
// fingerprint: the caller asserts that a stored (cycles, area) verdict is
// exactly what recomputation yields.
func Recheck(m *ir.Module, cfg Config, lim interp.Limits, wantCycles, wantArea int64) error {
	rep, err := ProfileChecked(m, cfg, lim)
	if err != nil {
		return fmt.Errorf("hls recheck: %w", err)
	}
	if rep.Cycles != wantCycles || int64(rep.AreaLUT) != wantArea {
		return fmt.Errorf("hls recheck: recomputed cycles %d / area %d, stored cycles %d / area %d",
			rep.Cycles, rep.AreaLUT, wantCycles, wantArea)
	}
	return nil
}

// analyze returns f's memoized summary in the given calling context,
// failing on recursion.
func (sa *staticAnalyzer) analyze(f *ir.Func, hints []analysis.Interval) (*funcStatic, bool) {
	hints = canonHints(f, hints)
	k := ctxKey{fn: f, hints: hintString(hints)}
	if fs, seen := sa.memo[k]; seen {
		return fs, fs != nil
	}
	if sa.visiting[f] {
		return nil, false // recursion: depth is data-dependent
	}
	sa.visiting[f] = true
	fs := sa.analyzeFunc(f, hints)
	delete(sa.visiting, f)
	if fs != nil {
		fs.key = k
	}
	sa.memo[k] = fs
	return fs, fs != nil
}

// topo returns main's context-DAG closure callers-first (the DAG is
// acyclic: analyze rejected recursion).
func (sa *staticAnalyzer) topo(root *funcStatic) []*funcStatic {
	var order []*funcStatic
	seen := make(map[*funcStatic]bool)
	var visit func(fs *funcStatic)
	visit = func(fs *funcStatic) {
		if seen[fs] {
			return
		}
		seen[fs] = true
		for cs := range fs.calls {
			visit(cs)
		}
		order = append(order, fs)
	}
	visit(root)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// height is the longest call chain below fs, in edges.
func (sa *staticAnalyzer) height(fs *funcStatic, memo map[*funcStatic]int64) int64 {
	if h, ok := memo[fs]; ok {
		return h
	}
	var h int64
	for cs, c := range fs.calls {
		if c == 0 {
			continue
		}
		if ch := sa.height(cs, memo) + 1; ch > h {
			h = ch
		}
	}
	memo[fs] = h
	return h
}

// retRounds bounds the callee-return refinement iteration of analyzeFunc:
// each round threads the callee return intervals discovered so far back
// into the caller's range analysis, which can narrow the argument hints of
// other call sites. Chains of call-result-into-call-argument deeper than
// this are declined rather than analyzed with unstable ranges.
const retRounds = 4

// analyzeFunc computes the per-invocation summary in one calling context,
// or nil when any executed construct escapes the static model.
//
// Call sites are resolved interprocedurally: every callee is analyzed in
// the context of the argument intervals the site supplies (rng.At at the
// call block), and the summarized return interval feeds back into this
// function's range analysis through the ComputeRangesCtx hook. Because the
// hints depend on the ranges and the ranges depend on the callee returns,
// the two are iterated to a fixpoint: starting from Full returns (always
// sound), each round can only use argument hints that were themselves
// derived from sound ranges, so the final, stable round is sound too.
func (sa *staticAnalyzer) analyzeFunc(f *ir.Func, hints []analysis.Interval) *funcStatic {
	if len(f.Blocks) == 0 {
		return nil
	}
	siteRet := make(map[*ir.Instr]analysis.Interval)
	siteCtx := make(map[*ir.Instr]*funcStatic)
	var rng *analysis.Ranges
	converged := false
	for round := 0; round < retRounds && !converged; round++ {
		rng = analysis.ComputeRangesCtx(f, hints, func(site *ir.Instr) analysis.Interval {
			if iv, ok := siteRet[site]; ok {
				return iv
			}
			return analysis.Full
		})
		converged = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall || in.Callee == nil ||
					len(in.Args) != len(in.Callee.Params) {
					continue
				}
				argHints := make([]analysis.Interval, len(in.Args))
				for i, a := range in.Args {
					argHints[i] = rng.At(a, b)
				}
				cs, okc := sa.analyze(in.Callee, argHints)
				ret := analysis.Full
				if okc {
					ret = cs.ret
				}
				siteCtx[in] = cs // nil records failure in this context
				if old, seen := siteRet[in]; !seen || old != ret {
					siteRet[in] = ret
					converged = false
				}
			}
		}
	}
	if !converged {
		return nil // unstable hint/return feedback: let the interpreter decide
	}
	scev := rng.SCEV()
	rpo := scev.Dom().RPO()
	idx := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		idx[b] = i
	}
	fs := &funcStatic{
		fn:    f,
		freq:  make(map[*ir.Block]int64),
		calls: make(map[*funcStatic]int64),
	}
	flow := map[*ir.Block]int64{f.Entry(): 1}
	entries := make(map[*ir.Loop]int64)
	// addFlow routes n executions along the edge from -> to. Back edges are
	// dropped: re-entries are what the header's trip multiplication models.
	// Any other edge to an already-processed block means the propagation
	// order cannot express the CFG, so the analysis declines.
	addFlow := func(from, to *ir.Block, n int64) bool {
		if n == 0 {
			return true
		}
		for l := scev.InnermostLoop(from); l != nil; l = l.Parent {
			if l.Header == to {
				return true
			}
		}
		if j, ok := idx[to]; !ok || j <= idx[from] {
			return false
		}
		var ok bool
		flow[to], ok = addChk(flow[to], n)
		return ok
	}
	retFlow := int64(0)
	for _, b := range rpo {
		n := flow[b]
		l := scev.InnermostLoop(b)
		if l != nil && l.Header == b {
			if n == 0 {
				continue // the loop is never entered; its body stays at 0
			}
			tr := scev.TripsOf(l)
			if tr.Kind != analysis.TripFinite {
				return nil // unknown or infinite: the interpreter must decide
			}
			entries[l] = n
			var ok bool
			if n, ok = mulChk(n, tr.HeaderExecs); !ok {
				return nil
			}
		}
		if n == 0 {
			continue
		}
		fs.freq[b] = n
		if !sa.scanBlock(fs, rng, siteCtx, b, n) {
			return nil
		}
		t := b.Term()
		if t == nil || t != b.Instrs[len(b.Instrs)-1] {
			return nil
		}
		switch {
		case t.Op == ir.OpRet:
			// A return inside a loop would cut the modeled trips short, and
			// a frequency other than 1 cannot happen in a real invocation.
			if n != 1 || l != nil {
				return nil
			}
			retFlow += n
			if len(t.Args) == 1 {
				fs.ret = rng.At(t.Args[0], b)
			} else {
				fs.ret = analysis.Point(0)
			}
		case t.Op == ir.OpUnreachable:
			return nil // executing it is a trap
		case t.Op == ir.OpBr && len(t.Blocks) == 1:
			if !addFlow(b, t.Blocks[0], n) {
				return nil
			}
		case t.IsConditionalBr():
			if t.Blocks[0] == t.Blocks[1] {
				if !addFlow(b, t.Blocks[0], n) {
					return nil
				}
				break
			}
			if ok, done := sa.loopExitFlow(scev, entries, addFlow, b, l, n); done {
				if !ok {
					return nil
				}
				break
			}
			// Not a recognized loop exit: the ranges must decide the branch
			// outright (every execution takes the same edge).
			c := rng.At(t.Args[0], b)
			switch {
			case !c.Contains(0):
				if !addFlow(b, t.Blocks[0], n) {
					return nil
				}
			case c.IsPoint(): // the point is 0
				if !addFlow(b, t.Blocks[1], n) {
					return nil
				}
			default:
				return nil
			}
		case t.Op == ir.OpSwitch:
			c := rng.At(t.Args[0], b)
			if !c.IsPoint() {
				return nil
			}
			target := t.Blocks[0]
			for i, cv := range t.Cases {
				if cv == c.Lo {
					target = t.Blocks[i+1]
					break
				}
			}
			if !addFlow(b, target, n) {
				return nil
			}
		default:
			return nil
		}
	}
	if retFlow != 1 {
		return nil // the invocation must return exactly once
	}
	return fs
}

// loopExitFlow handles b's conditional branch when b is the recognized
// exiting block of a loop on its nest chain: each loop entry exits exactly
// once, the rest of the flow stays inside. done reports whether b was such
// an exit (ok is only meaningful then).
func (sa *staticAnalyzer) loopExitFlow(scev *analysis.SCEV, entries map[*ir.Loop]int64,
	addFlow func(from, to *ir.Block, n int64) bool, b *ir.Block, l *ir.Loop, n int64) (ok, done bool) {
	for x := l; x != nil; x = x.Parent {
		tr := scev.TripsOf(x)
		if tr.Kind != analysis.TripFinite || tr.Exiting != b {
			continue
		}
		e := entries[x]
		// Consistency: in both rotated and while form the exiting block runs
		// once per header execution, entries(x)·HeaderExecs times in total.
		if want, okm := mulChk(e, tr.HeaderExecs); !okm || want != n {
			return false, true
		}
		t := b.Term()
		exitTo, stayTo := t.Blocks[0], t.Blocks[1]
		if x.Contains(exitTo) {
			exitTo, stayTo = stayTo, exitTo
		}
		return addFlow(b, exitTo, e) && addFlow(b, stayTo, n-e), true
	}
	return false, false
}

// scanBlock accumulates the per-invocation costs of block b at frequency n
// and proves every instruction in it safe: no trap the interpreter could
// take, no op outside the model. siteCtx carries the per-call-site callee
// contexts resolved by analyzeFunc's interprocedural pre-pass.
func (sa *staticAnalyzer) scanBlock(fs *funcStatic, rng *analysis.Ranges,
	siteCtx map[*ir.Instr]*funcStatic, b *ir.Block, n int64) bool {
	var ok bool
	if d, okm := mulChk(n, int64(len(b.Instrs))); okm {
		fs.steps, ok = addChk(fs.steps, d)
	}
	if !ok {
		return false
	}
	for _, in := range b.Instrs {
		switch {
		case in.Op == ir.OpSDiv || in.Op == ir.OpSRem:
			if rng.At(in.Args[1], b).Contains(0) {
				return false // possible division-by-zero trap
			}
		case in.Op == ir.OpAlloca:
			cells := int64(1)
			if in.AllocTy.Kind == ir.ArrayKind {
				cells = int64(in.AllocTy.Len)
			}
			var d int64
			if d, ok = mulChk(n, cells); ok {
				fs.allocCells, ok = addChk(fs.allocCells, d)
			}
			if !ok {
				return false
			}
		case in.Op == ir.OpLoad:
			if !proveAccess(rng, in.Args[0], b, 1) {
				return false
			}
		case in.Op == ir.OpStore:
			if !proveAccess(rng, in.Args[1], b, 1) {
				return false
			}
		case in.Op == ir.OpMemset:
			c := rng.At(in.Args[2], b)
			if !c.IsPoint() {
				return false // the cell counter needs the exact length
			}
			var d int64
			if d, ok = mulChk(n, c.Lo); ok {
				fs.msetCells, ok = addChk(fs.msetCells, d)
			}
			if !ok {
				return false
			}
			if c.Lo > 0 {
				// One step per written cell, and the writes must be in
				// bounds (a non-positive length writes nothing).
				if d, ok = mulChk(n, c.Lo); ok {
					fs.steps, ok = addChk(fs.steps, d)
				}
				if !ok || !proveAccess(rng, in.Args[0], b, c.Lo) {
					return false
				}
			}
		case in.Op == ir.OpCall:
			if in.Callee == nil || len(in.Args) != len(in.Callee.Params) {
				return false // a short call leaves params unbound
			}
			cs := siteCtx[in]
			if cs == nil {
				return false // callee not static under this site's arguments
			}
			fs.calls[cs], ok = addChk(fs.calls[cs], n)
			if !ok {
				return false
			}
		case in.Op.IsBinary() || in.Op.IsCast() || in.Op.IsTerminator() ||
			in.Op == ir.OpICmp || in.Op == ir.OpSelect || in.Op == ir.OpPhi ||
			in.Op == ir.OpGEP || in.Op == ir.OpPrint:
			// Cannot trap; costs are covered by the per-instruction step.
		default:
			return false // unknown op: the interpreter may reject it
		}
	}
	return true
}

// proveAccess shows that the n cells at p are inside p's object: the
// pointer must chain through GEPs/bitcasts to an alloca or global root,
// every intermediate offset must stay inside the interpreter's unsigned
// pointer offset field (so the encoding round-trips), and the final window
// [off, off+n-1] must lie within the root's cell count.
func proveAccess(rng *analysis.Ranges, p ir.Value, b *ir.Block, n int64) bool {
	var idxs []analysis.Interval
	cells := int64(-1)
walk:
	for {
		switch v := p.(type) {
		case *ir.Global:
			cells = int64(v.NumElems())
			break walk
		case *ir.Instr:
			switch v.Op {
			case ir.OpAlloca:
				cells = 1
				if v.AllocTy.Kind == ir.ArrayKind {
					cells = int64(v.AllocTy.Len)
				}
				break walk
			case ir.OpGEP:
				idxs = append(idxs, rng.At(v.Args[1], b))
				p = v.Args[0]
			case ir.OpBitCast:
				p = v.Args[0]
			default:
				return false
			}
		default:
			return false
		}
	}
	off := analysis.Point(0)
	for i := len(idxs) - 1; i >= 0; i-- {
		var ok bool
		if off, ok = addIvl(off, idxs[i]); !ok {
			return false
		}
		if off.Lo < 0 || off.Hi > ptrOffField {
			return false
		}
	}
	// cells - off.Hi cannot overflow: both operands are small non-negatives.
	return off.Lo >= 0 && n <= cells-off.Hi
}

// addIvl adds two intervals with overflow detection.
func addIvl(a, b analysis.Interval) (analysis.Interval, bool) {
	lo, ok1 := addChk(a.Lo, b.Lo)
	hi, ok2 := addChk(a.Hi, b.Hi)
	return analysis.Interval{Lo: lo, Hi: hi}, ok1 && ok2
}

// addChk and mulChk are int64 arithmetic with overflow reporting; the
// static profiler declines rather than miscounting.
func addChk(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulChk(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		if a == 1 || b == 1 {
			return math.MinInt64, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
