// Package artifact is the persistent, content-addressed tier beneath the
// in-memory caches: profile verdicts, memoized feature vectors and lowered
// VM bytecode, keyed by the structural IR fingerprint plus whatever
// configuration the artifact depends on. Everything in the store is a pure
// function of its key, so the store is a cache in the strict sense — any
// record may be dropped, corrupted or lost at any point and the only
// observable effect is that the producer runs again. That is the load-
// bearing design rule: every failure mode (torn write, flipped byte,
// version skew, short read, missing file) is treated as a miss, never as
// an error, and the record is simply rewritten.
//
// On disk the store is a directory of immutable segment files. Records are
// length-prefixed and individually checksummed; segments are committed by
// writing a temp file and renaming it into place, so a crash mid-write
// leaves at worst an ignorable *.tmp file, never a half-visible segment.
// Writes go through an asynchronous write-behind flusher — Put queues the
// record in memory (where it is immediately readable) and returns; the hot
// profiling path never blocks on disk. A size budget evicts whole segments
// oldest-first, so the store converges on the working set's most recently
// rewritten artifacts.
package artifact

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"autophase/internal/faults"
	"autophase/internal/ir"
)

// Kind namespaces the payload types sharing one store.
type Kind uint8

// Record kinds.
const (
	// KindProfile is a profile verdict (cycles/area/steps/exit) produced by
	// any engine; Aux binds it to the schedule config, the execution limits
	// and the engine policy that produced it.
	KindProfile Kind = 1
	// KindFeatures is a 56-feature vector; features are a pure function of
	// the IR, so Aux is zero.
	KindFeatures Kind = 2
	// KindGraphFeatures is the structural graph feature block (same key
	// discipline as KindFeatures, separate namespace).
	KindGraphFeatures Kind = 3
	// KindBytecode is a serialized vm.Program; Aux binds it to the schedule
	// config whose block weights were folded into the instruction stream.
	KindBytecode Kind = 4
)

// Key addresses one record: the structural fingerprint of the IR the
// artifact was derived from, the artifact kind, and a kind-specific hash of
// every configuration input the artifact's value depends on. Two processes
// that compute the same key are guaranteed (by the engines' bit-identical
// determinism contract) to compute the same value, which is what makes the
// store content-addressed rather than merely keyed.
type Key struct {
	FP   ir.Fingerprint
	Kind Kind
	Aux  uint64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits      int64 // Get calls answered from the store
	Misses    int64 // Get calls that found nothing
	Writes    int64 // records accepted by Put (deduplicated)
	Bytes     int64 // record bytes accepted for write-behind (queued or committed)
	Corrupt   int64 // records dropped as corrupt (checksum, framing, version, injected)
	Evictions int64 // whole segments evicted by the size budget
	Segments  int64 // segment files currently on disk
	Pending   int64 // records queued but not yet committed
}

// Store is the disk-backed artifact cache. All methods are safe for
// concurrent use. The zero value is not usable; call Open.
type Store struct {
	dir    string
	budget int64

	mu      sync.Mutex
	index   map[Key]entry // guarded by mu; every readable record
	pending []record      // guarded by mu; queued for the next segment
	pendSz  int64         // guarded by mu; encoded size of pending
	segs    []segInfo     // guarded by mu; committed segments, oldest first
	nextSeq int64         // guarded by mu; next segment sequence number
	closed  bool          // guarded by mu

	flushMu  sync.Mutex // serializes segment commits (flusher vs Flush)
	wake     chan struct{}
	done     chan struct{}
	draining sync.WaitGroup

	hits      atomic.Int64
	misses    atomic.Int64
	writes    atomic.Int64
	bytes     atomic.Int64
	corrupt   atomic.Int64
	evictions atomic.Int64
}

type entry struct {
	data []byte
	seg  int64 // segment sequence holding the record; -1 while pending
}

type record struct {
	key  Key
	data []byte
}

type segInfo struct {
	seq  int64
	path string
	size int64
}

const (
	segMagic   = "APAS"
	segVersion = 1
	// maxRecord bounds one record's body so a corrupted length prefix can
	// never drive a giant allocation.
	maxRecord = 64 << 20
	// flushBytes is the write-behind threshold: the flusher commits a
	// segment once this much record data is queued (Flush and Close commit
	// whatever is pending regardless).
	flushBytes = 256 << 10
	// headerLen is magic + u16 version + u16 reserved.
	headerLen = 8
	// recHeaderLen is u32 body length + u64 checksum.
	recHeaderLen = 12
	// bodyFixed is the fixed part of a record body: fp (16) + kind (1) +
	// aux (8).
	bodyFixed = 25
)

// DefaultBudget bounds the store at 512 MiB unless the caller says
// otherwise.
const DefaultBudget = 512 << 20

// Open loads (or creates) the store rooted at dir. Every readable record in
// every committed segment is indexed into memory; corrupt records, stale
// temp files and version-mismatched segments are dropped and counted, never
// reported as errors — the only errors Open returns are directory-level
// (cannot create, cannot list). budget <= 0 means DefaultBudget.
func Open(dir string, budget int64) (*Store, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open %s: %w", dir, err)
	}
	s := &Store{
		dir:    dir,
		budget: budget,
		index:  make(map[Key]entry),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.evictLocked()
	s.draining.Add(1)
	go s.flusher()
	return s, nil
}

// load scans the directory: abandoned temp files are removed, segments are
// parsed oldest-first so a key rewritten after corruption resolves to its
// newest copy.
//
//contractvet:locked segs,nextSeq -- runs inside Open before the store is shared; no concurrent access exists yet
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("artifact: open %s: %w", s.dir, err)
	}
	for _, de := range entries {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-commit: the segment was never renamed into place,
			// so its contents were never promised to anyone.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		path := filepath.Join(s.dir, name)
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.segs = append(s.segs, segInfo{seq: seq, path: path, size: info.Size()})
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].seq < s.segs[j].seq })
	kept := s.segs[:0]
	for _, seg := range s.segs {
		if s.loadSegment(seg) {
			kept = append(kept, seg)
		} else {
			// Version skew or an unreadable header: the whole file is dead
			// weight under the budget, so it is deleted rather than skipped.
			os.Remove(seg.path)
		}
	}
	s.segs = kept
	return nil
}

// loadSegment indexes one segment's readable records. It returns false when
// the file should be deleted outright (unreadable, wrong magic or version);
// record-level corruption only skips the damaged tail or record.
//
//contractvet:locked index -- called only from load, inside Open before the store is shared
func (s *Store) loadSegment(seg segInfo) bool {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return false
	}
	if len(data) < headerLen || string(data[:4]) != segMagic ||
		binary.LittleEndian.Uint16(data[4:6]) != segVersion {
		s.corrupt.Add(1)
		return false
	}
	off := headerLen
	for off < len(data) {
		if len(data)-off < recHeaderLen {
			s.corrupt.Add(1) // short read: a torn tail
			break
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint64(data[off+4:])
		off += recHeaderLen
		if bodyLen < bodyFixed || bodyLen > maxRecord || bodyLen > len(data)-off {
			// Framing is gone; nothing after this point can be trusted.
			s.corrupt.Add(1)
			break
		}
		body := data[off : off+bodyLen]
		off += bodyLen
		if fnv1a(body) != sum || faults.Hit(faults.DiskCorrupt) {
			// A flipped byte inside one record (or the chaos injector
			// simulating one): the framing is intact, so later records in
			// the same segment are still good.
			s.corrupt.Add(1)
			continue
		}
		key := Key{
			FP:   ir.Fingerprint{Hi: binary.LittleEndian.Uint64(body), Lo: binary.LittleEndian.Uint64(body[8:])},
			Kind: Kind(body[16]),
			Aux:  binary.LittleEndian.Uint64(body[17:]),
		}
		payload := make([]byte, bodyLen-bodyFixed)
		copy(payload, body[bodyFixed:])
		s.index[key] = entry{data: payload, seg: seg.seq}
	}
	return true
}

func parseSegName(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".seg")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// Get returns the payload stored under k. The returned slice is shared and
// must be treated as immutable.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.index[k]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.data, true
}

// NoteCorrupt records a corruption detected above the store (a record whose
// checksum held but whose payload failed its consumer's decode or verify
// step), and drops the record so the producer's rewrite lands.
func (s *Store) NoteCorrupt(k Key) {
	s.corrupt.Add(1)
	s.mu.Lock()
	delete(s.index, k)
	s.mu.Unlock()
}

// Put queues the payload for write-behind persistence under k and makes it
// immediately readable. The hot path never blocks on disk: the actual
// segment commit happens on the flusher goroutine. Duplicate keys are
// dropped (records are pure functions of their key, so the first value is
// as good as any).
func (s *Store) Put(k Key, payload []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.index[k]; dup {
		s.mu.Unlock()
		return
	}
	data := append([]byte(nil), payload...)
	s.index[k] = entry{data: data, seg: -1}
	s.pending = append(s.pending, record{key: k, data: data})
	s.pendSz += int64(recHeaderLen + bodyFixed + len(data))
	kick := s.pendSz >= flushBytes
	s.mu.Unlock()
	s.writes.Add(1)
	s.bytes.Add(int64(recHeaderLen + bodyFixed + len(data)))
	if kick {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// flusher is the write-behind goroutine: it commits a segment whenever the
// pending queue crosses the threshold, and drains on Close.
func (s *Store) flusher() {
	defer s.draining.Done()
	for {
		select {
		case <-s.wake:
			s.flushOnce(false)
		case <-s.done:
			s.flushOnce(true)
			return
		}
	}
}

// Flush synchronously commits every pending record. Tests and CLI exits use
// it; the hot path never does.
func (s *Store) Flush() {
	s.flushOnce(true)
}

// flushOnce commits pending records into one new segment. force commits any
// nonempty queue; otherwise only a threshold-crossing queue is written (the
// flusher may be woken late, after Flush already drained the queue).
func (s *Store) flushOnce(force bool) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if len(s.pending) == 0 || (!force && s.pendSz < flushBytes) {
		s.mu.Unlock()
		return
	}
	recs := s.pending
	s.pending = nil
	s.pendSz = 0
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	buf := make([]byte, headerLen, headerLen+64<<10)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint16(buf[4:], segVersion)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}

	final := filepath.Join(s.dir, fmt.Sprintf("seg-%012d.seg", seq))
	if !writeSegment(final, buf) {
		// The write failed (disk full, injected crash): the records stay
		// readable from memory and simply are not persisted. Re-queueing
		// them would retry a disk that just failed; dropping is the
		// cache-semantics answer.
		return
	}

	s.mu.Lock()
	s.segs = append(s.segs, segInfo{seq: seq, path: final, size: int64(len(buf))})
	for _, r := range recs {
		if e, ok := s.index[r.key]; ok && e.seg == -1 {
			e.seg = seq
			s.index[r.key] = e
		}
	}
	s.evictLocked()
	s.mu.Unlock()
}

func appendRecord(buf []byte, r record) []byte {
	bodyLen := bodyFixed + len(r.data)
	var hdr [recHeaderLen]byte
	var body [bodyFixed]byte
	binary.LittleEndian.PutUint64(body[:], r.key.FP.Hi)
	binary.LittleEndian.PutUint64(body[8:], r.key.FP.Lo)
	body[16] = byte(r.key.Kind)
	binary.LittleEndian.PutUint64(body[17:], r.key.Aux)
	sum := fnv1aInit()
	sum = fnv1aAdd(sum, body[:])
	sum = fnv1aAdd(sum, r.data)
	binary.LittleEndian.PutUint32(hdr[:], uint32(bodyLen))
	binary.LittleEndian.PutUint64(hdr[4:], sum)
	buf = append(buf, hdr[:]...)
	buf = append(buf, body[:]...)
	return append(buf, r.data...)
}

// testWriteLimit, when positive, truncates the next segment write after
// that many bytes and fails the commit — the crash-safety tests' stand-in
// for killing the process mid-write.
var testWriteLimit atomic.Int64

// writeSegment commits buf crash-safely: full write to a temp file in the
// same directory, then an atomic rename. Readers never observe a partial
// segment under POSIX rename semantics; a crash between write and rename
// leaves only a *.tmp file that the next Open removes.
func writeSegment(final string, buf []byte) bool {
	tmp := final + ".tmp"
	if lim := testWriteLimit.Swap(0); lim > 0 && lim < int64(len(buf)) {
		os.WriteFile(tmp, buf[:lim], 0o644) // the injected kill: partial temp, no rename
		return false
	}
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		os.Remove(tmp)
		return false
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return false
	}
	return true
}

// evictLocked enforces the size budget by deleting whole segments oldest
// first. Records whose newest copy lived in an evicted segment disappear
// from the index; rewrites land in fresh segments, so the store converges
// on the live working set. Callers hold s.mu.
//
//contractvet:locked index,segs -- callers hold mu
func (s *Store) evictLocked() {
	var total int64
	for _, seg := range s.segs {
		total += seg.size
	}
	for total > s.budget && len(s.segs) > 1 {
		victim := s.segs[0]
		s.segs = s.segs[1:]
		total -= victim.size
		os.Remove(victim.path)
		for k, e := range s.index {
			if e.seg == victim.seq {
				delete(s.index, k)
			}
		}
		s.evictions.Add(1)
	}
}

// Close drains the pending queue to disk and stops the flusher. The store
// is unusable afterwards (Get misses, Put drops).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.draining.Wait()
	s.mu.Lock()
	s.index = map[Key]entry{}
	s.mu.Unlock()
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	segs := int64(len(s.segs))
	pend := int64(len(s.pending))
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Bytes:     s.bytes.Load(),
		Corrupt:   s.corrupt.Load(),
		Evictions: s.evictions.Load(),
		Segments:  segs,
		Pending:   pend,
	}
}

// Len reports the number of readable records (committed + pending).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// MixAux folds any number of configuration hashes into one Aux value with
// the splitmix64 finalizer, so key construction at every call site composes
// the same way.
func MixAux(parts ...uint64) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// HashString hashes a printf-rendered configuration value (FNV-1a); the
// stable %#v rendering of a flat config struct is a deterministic,
// process-independent key input.
func HashString(v string) uint64 {
	h := fnv1aInit()
	return fnv1aAdd(h, []byte(v))
}

func fnv1aInit() uint64 { return 14695981039346656037 }

func fnv1aAdd(h uint64, data []byte) uint64 {
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

func fnv1a(data []byte) uint64 { return fnv1aAdd(fnv1aInit(), data) }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
