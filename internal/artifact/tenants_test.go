package artifact

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEvictionDuringInFlightReads drives the store the way `autophase
// serve` does: several tenants writing disjoint key ranges while readers
// hammer the same ranges, with a budget small enough that whole-segment
// eviction runs continuously under the reads. A Get may miss (the segment
// was evicted) but a hit must always return the exact payload for that
// key — eviction must never expose a reader to another record's bytes or
// a partially reclaimed buffer.
func TestEvictionDuringInFlightReads(t *testing.T) {
	const (
		tenants  = 4
		perKeys  = 64
		recBytes = 1024
		budget   = 64 << 10 // ~1/4 of the total written, so eviction is constant
	)
	s := mustOpen(t, t.TempDir(), budget)
	defer s.Close()

	tkey := func(tenant, i int) Key { return key(tenant*1000 + i) }
	tpay := func(tenant, i int) []byte { return payload(tenant*1000+i, recBytes) }

	var writersDone atomic.Bool
	var wrong atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < tenants; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perKeys; i++ {
				s.Put(tkey(w, i), tpay(w, i))
				if i%16 == 15 {
					s.Flush() // commit a segment, forcing evictLocked under the readers
				}
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < tenants; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for !writersDone.Load() {
				for i := 0; i < perKeys; i++ {
					got, ok := s.Get(tkey(r, i))
					if ok && !bytes.Equal(got, tpay(r, i)) {
						wrong.Add(1)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	writersDone.Store(true)
	readers.Wait()

	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d reads returned wrong bytes during eviction", n)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget %d never evicted under %d bytes of writes: %+v",
			int64(budget), tenants*perKeys*recBytes, st)
	}
	if st.Writes != tenants*perKeys {
		t.Fatalf("want %d writes, got %d", tenants*perKeys, st.Writes)
	}
}

// TestCorruptAsMissRaceSameFingerprint races several tenants on one
// fingerprint: everyone puts the same record (records are pure functions
// of their key), readers verify every hit byte-for-byte, and a saboteur
// repeatedly reports the record corrupt. Corruption may only ever demote
// a hit to a miss — never serve damaged bytes — and a rewrite after the
// dust settles must make the key readable again, including across a
// restart.
func TestCorruptAsMissRaceSameFingerprint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)

	k := key(7)
	canon := payload(7, 512)

	var wrong atomic.Int64
	var wg sync.WaitGroup
	for tenant := 0; tenant < 4; tenant++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Put(k, canon)
				if got, ok := s.Get(k); ok && !bytes.Equal(got, canon) {
					wrong.Add(1)
					return
				}
				if i%50 == 49 {
					s.NoteCorrupt(k) // drop it so the next Put re-lands
				}
			}
		}()
	}
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d hits returned wrong bytes while racing NoteCorrupt", n)
	}
	st := s.Stats()
	if st.Corrupt == 0 {
		t.Fatal("saboteur's NoteCorrupt calls were not counted")
	}

	// The producer's rewrite wins: after the races, one more Put makes the
	// key durable again.
	s.Put(k, canon)
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, canon) {
		t.Fatal("rewrite after corruption did not restore the record")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if got, ok := s2.Get(k); !ok || !bytes.Equal(got, canon) {
		t.Fatal("rewritten record lost across restart")
	}
}
