package artifact

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"autophase/internal/faults"
	"autophase/internal/ir"
)

func key(i int) Key {
	return Key{FP: ir.Fingerprint{Hi: uint64(i) + 1, Lo: ^uint64(i)}, Kind: KindProfile, Aux: uint64(i) * 3}
}

func payload(i, n int) []byte {
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(i + j)
	}
	return p
}

func mustOpen(t *testing.T, dir string, budget int64) *Store {
	t.Helper()
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip: records put before a flush are readable immediately, and
// readable again from a fresh Open after the flush.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 100; i++ {
		s.Put(key(i), payload(i, 40+i))
	}
	for i := 0; i < 100; i++ {
		got, ok := s.Get(key(i))
		if !ok {
			t.Fatalf("record %d unreadable before flush", i)
		}
		if want := payload(i, 40+i); string(got) != string(want) {
			t.Fatalf("record %d: wrong payload before flush", i)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	for i := 0; i < 100; i++ {
		got, ok := s2.Get(key(i))
		if !ok {
			t.Fatalf("record %d lost across restart", i)
		}
		if want := payload(i, 40+i); string(got) != string(want) {
			t.Fatalf("record %d: wrong payload after restart", i)
		}
	}
	if st := s2.Stats(); st.Hits != 100 || st.Corrupt != 0 {
		t.Fatalf("stats after warm reads: %+v", st)
	}
}

// TestKindAndAuxSeparateNamespaces: same fingerprint, different kind or aux
// → different records.
func TestKindAndAuxSeparateNamespaces(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	fp := ir.Fingerprint{Hi: 7, Lo: 9}
	s.Put(Key{FP: fp, Kind: KindProfile, Aux: 1}, []byte("profile"))
	s.Put(Key{FP: fp, Kind: KindFeatures}, []byte("features"))
	s.Put(Key{FP: fp, Kind: KindProfile, Aux: 2}, []byte("profile2"))
	for _, tc := range []struct {
		k    Key
		want string
	}{
		{Key{FP: fp, Kind: KindProfile, Aux: 1}, "profile"},
		{Key{FP: fp, Kind: KindFeatures}, "features"},
		{Key{FP: fp, Kind: KindProfile, Aux: 2}, "profile2"},
	} {
		got, ok := s.Get(tc.k)
		if !ok || string(got) != tc.want {
			t.Fatalf("Get(%+v) = %q, %v; want %q", tc.k, got, ok, tc.want)
		}
	}
	if _, ok := s.Get(Key{FP: fp, Kind: KindBytecode}); ok {
		t.Fatal("unwritten kind resolved to a record")
	}
}

// TestDuplicatePutDropped: the first value for a key wins; duplicate Puts
// neither grow pending nor recount writes.
func TestDuplicatePutDropped(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	s.Put(key(1), []byte("first"))
	s.Put(key(1), []byte("second"))
	if got, _ := s.Get(key(1)); string(got) != "first" {
		t.Fatalf("duplicate Put overwrote: %q", got)
	}
	if st := s.Stats(); st.Writes != 1 {
		t.Fatalf("writes = %d, want 1", st.Writes)
	}
}

// TestCorruptRecordIsMiss: flipping a byte inside one record's payload
// drops exactly that record at the next Open; every other record in the
// same segment survives, and nothing errors.
func TestCorruptRecordIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 10; i++ {
		s.Put(key(i), payload(i, 100))
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the 4th record's payload: headerLen + 3 full
	// records + this record's header + a payload offset.
	recLen := recHeaderLen + bodyFixed + 100
	off := headerLen + 3*recLen + recHeaderLen + bodyFixed + 50
	data[off] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, ok := s2.Get(key(3)); ok {
		t.Fatal("corrupted record still readable")
	}
	for _, i := range []int{0, 1, 2, 4, 5, 6, 7, 8, 9} {
		if _, ok := s2.Get(key(i)); !ok {
			t.Fatalf("intact record %d lost to a neighbour's corruption", i)
		}
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}

	// The miss is rewritten: a fresh Put for the lost key persists again.
	s2.Put(key(3), payload(3, 100))
	s2.Flush()
	s2.Close()
	s3 := mustOpen(t, dir, 0)
	defer s3.Close()
	if _, ok := s3.Get(key(3)); !ok {
		t.Fatal("rewritten record did not persist")
	}
}

// TestTruncatedSegmentLoadsPrefix: a short read (torn tail) keeps every
// record before the tear and treats the rest as misses.
func TestTruncatedSegmentLoadsPrefix(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 10; i++ {
		s.Put(key(i), payload(i, 100))
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	data, _ := os.ReadFile(segs[0])
	recLen := recHeaderLen + bodyFixed + 100
	cut := headerLen + 5*recLen + recLen/2 // mid-record tear
	if err := os.WriteFile(segs[0], data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(key(i)); !ok {
			t.Fatalf("record %d before the tear lost", i)
		}
	}
	for i := 5; i < 10; i++ {
		if _, ok := s2.Get(key(i)); ok {
			t.Fatalf("record %d after the tear readable", i)
		}
	}
	if st := s2.Stats(); st.Corrupt == 0 {
		t.Fatal("torn tail not counted as corrupt")
	}
}

// TestVersionMismatchDropsSegment: a segment with a future version is
// removed wholesale and every record in it is a miss.
func TestVersionMismatchDropsSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put(key(1), []byte("x"))
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	data, _ := os.ReadFile(segs[0])
	binary.LittleEndian.PutUint16(data[4:], segVersion+1)
	os.WriteFile(segs[0], data, 0o644)

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, ok := s2.Get(key(1)); ok {
		t.Fatal("record from a future-version segment readable")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg")); len(left) != 0 {
		t.Fatal("version-mismatched segment not deleted")
	}
}

// TestBudgetEvictsOldestSegments: exceeding the byte budget deletes whole
// segments oldest-first; newest records survive.
func TestBudgetEvictsOldestSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 64<<10)
	// Each batch flushes its own segment (~33 KB): by the fourth segment
	// the first must be gone.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 32; i++ {
			s.Put(key(batch*32+i), payload(i, 1024))
		}
		s.Flush()
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions at a 64KiB budget: %+v", st)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("oldest segment's record survived eviction")
	}
	if _, ok := s.Get(key(3*32 + 1)); !ok {
		t.Fatal("newest segment's record evicted")
	}
	s.Close()

	// The budget also binds at Open.
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, ok := s2.Get(key(3*32 + 1)); !ok {
		t.Fatal("surviving record lost across restart")
	}
}

// TestCrashMidWrite: the flusher dying partway through a segment write (the
// injected stand-in for a process kill) leaves a store that opens cleanly;
// the records of the torn commit are misses, previously committed records
// are intact, and no *.tmp debris survives the reopen.
func TestCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 5; i++ {
		s.Put(key(i), payload(i, 64))
	}
	s.Flush() // first segment commits cleanly

	for i := 5; i < 10; i++ {
		s.Put(key(i), payload(i, 64))
	}
	testWriteLimit.Store(100) // kill the next segment write after 100 bytes
	s.Flush()
	// Do not Close (which would drain nothing new but reset the limit
	// bookkeeping); simulate the process dying here.

	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 1 {
		t.Fatalf("expected exactly the partial temp file, got %v", tmps)
	}

	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(key(i)); !ok {
			t.Fatalf("committed record %d lost to the crash", i)
		}
	}
	for i := 5; i < 10; i++ {
		if _, ok := s2.Get(key(i)); ok {
			t.Fatalf("record %d of the torn commit readable", i)
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatal("stale temp file survived reopen")
	}
	// The lost records rewrite cleanly.
	for i := 5; i < 10; i++ {
		s2.Put(key(i), payload(i, 64))
	}
	s2.Flush()
	if st := s2.Stats(); st.Writes != 5 {
		t.Fatalf("rewrites = %d, want 5", st.Writes)
	}
}

// TestInjectedDiskCorrupt: the disk-corrupt fault point turns decoded
// records into misses at the configured rate and counts them.
func TestInjectedDiskCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 200; i++ {
		s.Put(key(i), payload(i, 16))
	}
	s.Close()

	spec, err := faults.ParseSpec("disk-corrupt:0.5", 3)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(spec)
	defer faults.Disable()
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	st := s2.Stats()
	if st.Corrupt == 0 || st.Corrupt == 200 {
		t.Fatalf("injected corruption hit %d/200 records at rate 0.5", st.Corrupt)
	}
	if int64(s2.Len())+st.Corrupt != 200 {
		t.Fatalf("len %d + corrupt %d != 200", s2.Len(), st.Corrupt)
	}
}

// TestConcurrentPutGet: racing writers and readers over overlapping keys,
// past the flush threshold, under -race.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := key(i % 97)
				if w%2 == 0 {
					s.Put(k, payload(i%97, 256))
				} else if got, ok := s.Get(k); ok {
					if want := payload(i%97, 256); string(got) != string(want) {
						panic(fmt.Sprintf("torn read for %d", i%97))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s.Flush()
	if s.Len() != 97 {
		t.Fatalf("len = %d, want 97", s.Len())
	}
}

// TestMixAuxAndHashString: key-input hashing is deterministic and
// order-sensitive.
func TestMixAuxAndHashString(t *testing.T) {
	if MixAux(1, 2) == MixAux(2, 1) {
		t.Fatal("MixAux is order-insensitive")
	}
	if MixAux(1, 2) != MixAux(1, 2) {
		t.Fatal("MixAux not deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("HashString collision on trivial inputs")
	}
}
