package contractvet_test

import (
	"testing"

	"autophase/internal/contractvet"
	"autophase/internal/contractvet/vettest"
)

func TestNondeterminism(t *testing.T) {
	vettest.Run(t, "a/internal/interp", contractvet.NondeterminismAnalyzer)
}

// TestNondeterminismGating proves the analyzer is silent outside the
// determinism-critical package set: a/pkg uses time.Now, rand.Intn, and a
// printing map range, and carries no want comments.
func TestNondeterminismGating(t *testing.T) {
	vettest.Run(t, "a/pkg", contractvet.NondeterminismAnalyzer)
}

func TestChangedReport(t *testing.T) {
	vettest.Run(t, "b/internal/passes", contractvet.ChangedReportAnalyzer)
}

// TestChangedReportGating: the fake ir package itself is not under
// internal/passes, so its bool-returning methods draw no findings.
func TestChangedReportGating(t *testing.T) {
	vettest.Run(t, "b/internal/ir", contractvet.ChangedReportAnalyzer)
}

func TestRecoverGuard(t *testing.T) {
	vettest.Run(t, "c/internal/core", contractvet.RecoverGuardAnalyzer)
}

func TestLockDiscipline(t *testing.T) {
	vettest.Run(t, "d/internal/core", contractvet.LockDisciplineAnalyzer)
}

// TestAllAnalyzersOnFixtures runs the full suite over every fixture at
// once, the same composition `go vet -vettool` uses: analyzers must not
// trip over each other's fixtures beyond the declared expectations.
func TestAllAnalyzersOnFixtures(t *testing.T) {
	all := contractvet.Analyzers()
	for _, pkg := range []string{
		"a/internal/interp", "a/pkg", "b/internal/ir",
		"b/internal/passes", "c/internal/core", "d/internal/core",
	} {
		t.Run(pkg, func(t *testing.T) { vettest.Run(t, pkg, all...) })
	}
}
