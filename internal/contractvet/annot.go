package contractvet

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// annotations is the per-package comment-directive index shared by every
// analyzer in a Run. Directives attach to lines: a directive written on its
// own line covers the next line too (the annotated statement), one written
// as a trailing comment covers its own line.
type annotations struct {
	// allowLines maps "file:line" to the set of analyzer names allowed
	// there (the special name "*" allows all).
	allowLines map[string]map[string]bool
	// orderedLines marks "file:line" positions carrying
	// //contractvet:ordered.
	orderedLines map[string]bool
}

var (
	allowRE   = regexp.MustCompile(`^//contractvet:allow\s+([\w*,]+)\s+--\s+\S`)
	orderedRE = regexp.MustCompile(`^//contractvet:ordered\b`)
	bareAllow = regexp.MustCompile(`^//contractvet:allow\b`)
)

func scanAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	an := &annotations{
		allowLines:   make(map[string]map[string]bool),
		orderedLines: make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				pos := fset.Position(c.Pos())
				switch {
				case orderedRE.MatchString(text):
					an.orderedLines[lineKey(pos.Filename, pos.Line)] = true
					an.orderedLines[lineKey(pos.Filename, pos.Line+1)] = true
				case bareAllow.MatchString(text):
					m := allowRE.FindStringSubmatch(text)
					if m == nil {
						// An allow without a justification ("-- why") is
						// itself ill-formed; ignoring it makes the
						// underlying finding resurface, which is the
						// loudest available failure mode.
						continue
					}
					for _, name := range strings.Split(m[1], ",") {
						an.addAllow(pos.Filename, pos.Line, name)
						an.addAllow(pos.Filename, pos.Line+1, name)
					}
				}
			}
		}
	}
	return an
}

func (an *annotations) addAllow(file string, line int, analyzer string) {
	key := lineKey(file, line)
	set := an.allowLines[key]
	if set == nil {
		set = make(map[string]bool)
		an.allowLines[key] = set
	}
	set[analyzer] = true
}

// allowed reports whether an allow directive for the analyzer covers pos.
func (an *annotations) allowed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	set := an.allowLines[lineKey(p.Filename, p.Line)]
	return set[analyzer] || set["*"]
}

// ordered reports whether an //contractvet:ordered directive covers pos.
func (an *annotations) ordered(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return an.orderedLines[lineKey(p.Filename, p.Line)]
}

func lineKey(file string, line int) string {
	// Positions inside one package always share a FileSet, so the raw
	// filename string is a stable key.
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// guardedByRE extracts the mutex name from a struct-field comment of the
// form "guarded by <name>" (anywhere in the field's doc or line comment).
var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardName returns the declared guard mutex name for a struct field, from
// its doc comment or trailing line comment, or "".
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedFields returns the fields the enclosing function declares as
// caller-locked via "//contractvet:locked <field>[,<field>] -- why" in its
// doc comment; "*" means every guarded field.
var lockedRE = regexp.MustCompile(`^//contractvet:locked\s+([\w*,]+)\s+--\s+\S`)

func lockedFields(decl *ast.FuncDecl) map[string]bool {
	if decl == nil || decl.Doc == nil {
		return nil
	}
	// Directive comments are stripped by CommentGroup.Text, so scan the
	// raw list.
	for _, c := range decl.Doc.List {
		m := lockedRE.FindStringSubmatch(strings.TrimSpace(c.Text))
		if m == nil {
			continue
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(m[1], ",") {
			set[name] = true
		}
		return set
	}
	return nil
}
