// Package contractvet is a suite of static analyzers that enforce, at vet
// time, the engine contracts the repo otherwise enforces only dynamically
// (differential fuzzing, chaos suites, determinism sweeps):
//
//   - nondeterminism: determinism-critical packages must not read wall
//     clocks, draw from math/rand's global state, or feed unordered map
//     iteration into output or order-sensitive accumulation.
//   - changedreport: a pass that mutates IR must be able to report change
//     (the copy-on-write cache reuses the input module outright for runs
//     reported unchanged — see passes.Pass).
//   - recoverguard: goroutines spawned in the evaluation engine must route
//     through a panic-containment boundary (a deferred recover), or a
//     pass panic becomes a dead process instead of an EvalFault.
//   - lockdiscipline: fields annotated "guarded by <mutex>" are only
//     touched with their mutex locked, and no field mixes sync/atomic and
//     plain access.
//
// The analyzers are deliberately built on the standard library alone (no
// golang.org/x/tools dependency): a small Analyzer/Pass core here, an
// analysistest-style fixture harness in vettest, and a unitchecker-style
// driver (unitchecker.go) speaking the `go vet -vettool` protocol, compiled
// into cmd/vet-autophase.
//
// Escape hatches are comment directives, each requiring a justification:
//
//	//contractvet:ordered                     — this map iteration is proven
//	                                            order-insensitive or sorted
//	//contractvet:allow <analyzer> -- <why>   — suppress findings on the
//	                                            next (or same) line
//	//contractvet:locked <field> -- <why>     — callers hold the lock for
//	                                            <field> when calling this
//	// guarded by <mutex>                     — struct-field annotation
//	                                            consumed by lockdiscipline
//
// Every allow/locked directive is part of the committed findings baseline
// (testdata/contractvet-baseline.txt, kept honest by TestBaseline), so the
// CI gate `go vet -vettool=vet-autophase ./...` lands at zero diff.
package contractvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static contract check. It is a deliberately small subset
// of golang.org/x/tools/go/analysis.Analyzer: name, doc, and a Run over a
// fully type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	annots *annotations
	diags  *[]Diagnostic
}

// Diagnostic is one finding, positioned for `file:line:col: message`
// rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding unless an `//contractvet:allow <analyzer>`
// directive covers its line. Suppression lives here so the escape hatch
// behaves identically across all analyzers and both drivers.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.annots.allowed(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		ChangedReportAnalyzer,
		RecoverGuardAnalyzer,
		LockDisciplineAnalyzer,
	}
}

// Run executes the analyzers over one type-checked package and returns the
// findings sorted by position. Files from _test.go sources are excluded:
// the contracts govern the engine, not its tests (which intentionally
// exercise contract violations).
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	kept := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	var diags []Diagnostic
	an := scanAnnotations(fset, kept)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    kept,
			Pkg:      pkg,
			Info:     info,
			annots:   an,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// NewInfo returns a types.Info populated with every map the analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// pathHasSuffix reports whether the import path ends with the given
// slash-separated suffix on a path-element boundary, so both the real
// "autophase/internal/interp" and a fixture's "b/internal/interp" match
// "internal/interp" while "x/notinternal/interp" does not.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through an identifier or selector), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package a function belongs
// to, or "" for builtins.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// namedFromType unwraps pointers and returns the named type underneath, or
// nil.
func namedFromType(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeDeclaredIn reports whether t (possibly behind a pointer) is a named
// type declared in a package whose import path ends with pkgSuffix.
func typeDeclaredIn(t types.Type, pkgSuffix string) bool {
	named := namedFromType(t)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return pathHasSuffix(named.Obj().Pkg().Path(), pkgSuffix)
}
