package contractvet

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeUnit materializes a one-file package plus its cmd/go-style cfg in a
// temp dir and returns the cfg path and the VetxOutput path.
func writeUnit(t *testing.T, src string, mutate func(*vetConfig)) (string, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "core.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:         "fake/internal/core",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "fake/internal/core",
		GoFiles:    []string{goFile},
		VetxOutput: vetx,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetx
}

const unguardedSrc = `package core

func spawn() {
	go func() {}()
}
`

func TestRunUnitReportsAndWritesFacts(t *testing.T) {
	cfgPath, vetx := writeUnit(t, unguardedSrc, nil)
	diags, fset, err := runUnit(cfgPath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "recoverguard" {
		t.Errorf("analyzer = %q, want recoverguard", d.Analyzer)
	}
	if !strings.Contains(d.Message, "panic-containment boundary") {
		t.Errorf("message = %q, want panic-containment wording", d.Message)
	}
	if p := fset.Position(d.Pos); p.Line != 4 || !strings.HasSuffix(p.Filename, "core.go") {
		t.Errorf("position = %v, want core.go:4", p)
	}
	// The facts file must exist even though the analyzers produce none:
	// cmd/go refuses to cache the unit otherwise.
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestRunUnitVetxOnly(t *testing.T) {
	cfgPath, vetx := writeUnit(t, unguardedSrc, func(cfg *vetConfig) {
		cfg.VetxOnly = true
	})
	diags, _, err := runUnit(cfgPath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly unit produced diagnostics: %+v", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written for VetxOnly unit: %v", err)
	}
}

func TestRunUnitSucceedOnTypecheckFailure(t *testing.T) {
	src := "package core\n\nfunc broken() { undefined() }\n"
	cfgPath, _ := writeUnit(t, src, func(cfg *vetConfig) {
		cfg.SucceedOnTypecheckFailure = true
	})
	diags, _, err := runUnit(cfgPath, Analyzers())
	if err != nil {
		t.Fatalf("SucceedOnTypecheckFailure must swallow the type error, got %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("got diagnostics from an untypecheckable unit: %+v", diags)
	}
}

func TestRunUnitTypecheckFailureIsAnError(t *testing.T) {
	src := "package core\n\nfunc broken() { undefined() }\n"
	cfgPath, _ := writeUnit(t, src, nil)
	if _, _, err := runUnit(cfgPath, Analyzers()); err == nil {
		t.Fatal("want a typecheck error, got nil")
	}
}

func TestRunUnitMissingExportData(t *testing.T) {
	src := "package core\n\nimport \"nowhere/dep\"\n\nvar _ = dep.X\n"
	cfgPath, _ := writeUnit(t, src, nil)
	if _, _, err := runUnit(cfgPath, Analyzers()); err == nil {
		t.Fatal("want an error for an import with no export data, got nil")
	}
}

func TestPrintJSONDiags(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("x.go", -1, 100)
	pos := f.Pos(10)
	var buf bytes.Buffer
	printJSONDiags(&buf, fset, []Diagnostic{{Analyzer: "nondeterminism", Pos: pos, Message: "m"}})
	var out []struct{ Posn, Analyzer, Message string }
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0].Analyzer != "nondeterminism" || out[0].Message != "m" {
		t.Errorf("unexpected JSON diagnostics: %+v", out)
	}
}
