package contractvet

import (
	"go/ast"
	"go/types"
)

// recoverPkgSuffixes names the packages whose goroutines must be panic-
// contained: the evaluation engine (whose EvalFault taxonomy exists
// precisely so a pass panic never kills the process) and the interpreter
// it drives.
var recoverPkgSuffixes = []string{
	"internal/core",
	"internal/interp",
}

// RecoverGuardAnalyzer flags `go` statements in the evaluation engine that
// do not route through a panic-containment boundary. A goroutine is
// considered contained when the function it runs — a literal, a local
// variable bound to a literal, or a same-package named function — installs
// a deferred recover (directly, or via a deferred call to a same-package
// function that recovers).
var RecoverGuardAnalyzer = &Analyzer{
	Name: "recoverguard",
	Doc:  "require goroutines in the evaluation engine to install a panic-containment boundary",
	Run:  runRecoverGuard,
}

func runRecoverGuard(pass *Pass) {
	match := false
	for _, s := range recoverPkgSuffixes {
		if pathHasSuffix(pass.Pkg.Path(), s) {
			match = true
			break
		}
	}
	if !match {
		return
	}
	decls := packageFuncDecls(pass)
	funcLits := localFuncLits(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineContained(pass, g.Call, decls, funcLits, 0) {
				pass.Reportf(g.Pos(),
					"goroutine without a panic-containment boundary in %s: an escaped panic here kills the process instead of becoming an EvalFault (install a deferred recover, or annotate //contractvet:allow recoverguard -- why)",
					pass.Pkg.Path())
			}
			return true
		})
	}
}

// packageFuncDecls indexes the package's function and method declarations
// by their types object, so `go pkgFunc()` resolves to a body.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// localFuncLits maps variables to the function literals assigned to them
// anywhere in the package (`body := func() {...}` / `var body func();
// body = func() {...}`), so `go body()` resolves to a body.
func localFuncLits(pass *Pass) map[types.Object]*ast.FuncLit {
	lits := make(map[types.Object]*ast.FuncLit)
	bind := func(id *ast.Ident, rhs ast.Expr) {
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			lits[obj] = lit
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
					bind(id, as.Rhs[i])
				}
			}
			return true
		})
	}
	return lits
}

const recoverResolveDepth = 3

// goroutineContained reports whether the call a go statement runs installs
// a deferred recover.
func goroutineContained(pass *Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl, lits map[types.Object]*ast.FuncLit, depth int) bool {
	if depth > recoverResolveDepth {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyInstallsRecover(pass, fun.Body, decls, depth)
	case *ast.Ident:
		obj := pass.Info.Uses[fun]
		if lit, ok := lits[obj]; ok {
			return bodyInstallsRecover(pass, lit.Body, decls, depth)
		}
		if fd, ok := decls[obj]; ok {
			return bodyInstallsRecover(pass, fd.Body, decls, depth)
		}
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[fun.Sel]
		if fd, ok := decls[obj]; ok {
			return bodyInstallsRecover(pass, fd.Body, decls, depth)
		}
	}
	return false
}

// bodyInstallsRecover reports whether the function body contains, at its
// own function level (not inside a nested literal spawned elsewhere), a
// deferred function that recovers — either a deferred literal calling
// recover, or a deferred call to a same-package function that recovers.
func bodyInstallsRecover(pass *Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine's defers don't guard this one
		case *ast.DeferStmt:
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				if callsRecover(pass, fun.Body) {
					found = true
				}
			case *ast.Ident:
				if fd, ok := decls[pass.Info.Uses[fun]]; ok && callsRecover(pass, fd.Body) {
					found = true
				}
			case *ast.SelectorExpr:
				if fd, ok := decls[pass.Info.Uses[fun.Sel]]; ok && callsRecover(pass, fd.Body) {
					found = true
				}
			}
			return false
		}
		return true
	})
	return found
}

// callsRecover reports whether the body calls the recover builtin at its
// own function level.
func callsRecover(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" && isBuiltin(pass, id) {
			found = true
		}
		return true
	})
	return found
}
