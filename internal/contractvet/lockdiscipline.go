package contractvet

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockDisciplineAnalyzer enforces the "guarded by <mutex>" annotations on
// struct fields: every access to an annotated field must happen in a
// function that locks the named mutex (on the same receiver path) before
// the access, in a function declaring via //contractvet:locked that its
// callers hold the lock, or on a freshly constructed, not-yet-published
// value. It also flags fields accessed both through sync/atomic and
// through plain reads/writes — the mixed-access pattern the race detector
// only catches when both sides actually collide at runtime.
var LockDisciplineAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "check guarded-by field annotations and mixed atomic/plain access",
	Run:  runLockDiscipline,
}

// guardedField records one "guarded by <mutex>" annotation.
type guardedField struct {
	field types.Object // the annotated field
	guard string       // the mutex field's name
}

func runLockDiscipline(pass *Pass) {
	guards := collectGuards(pass)
	atomicFields := collectAtomicFields(pass)
	if len(guards) == 0 && len(atomicFields) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLocks(pass, fd, guards)
			checkAtomicMix(pass, fd, atomicFields)
		}
	}
}

// collectGuards scans struct declarations for "guarded by <mutex>" field
// annotations, validating that the named guard is a sibling field.
func collectGuards(pass *Pass) map[types.Object]guardedField {
	guards := make(map[types.Object]guardedField)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			names := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					names[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				g := guardName(f)
				if g == "" {
					continue
				}
				if !names[g] {
					pass.Reportf(f.Pos(),
						"field annotated \"guarded by %s\" but the struct has no field %s", g, g)
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = guardedField{field: obj, guard: g}
					}
				}
			}
			return true
		})
	}
	return guards
}

// checkFuncLocks verifies every guarded-field access in fd.
func checkFuncLocks(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]guardedField) {
	if len(guards) == 0 {
		return
	}
	locked := lockedFields(fd)
	fresh := freshLocals(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		gf, ok := guards[fieldObjOf(selection)]
		if !ok {
			return true
		}
		if locked[gf.field.Name()] || locked["*"] {
			return true
		}
		base := exprString(pass.Fset, sel.X)
		if obj := baseObject(pass, sel.X); obj != nil && fresh[obj] {
			return true // construction before publication
		}
		if lockHeldBefore(pass, fd, base, gf.guard, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but %s does not lock %s.%s first (lock it, mark the function //contractvet:locked %s -- why, or annotate the access)",
			base, gf.field.Name(), gf.guard, fd.Name.Name, base, gf.guard, gf.field.Name())
		return true
	})
}

func fieldObjOf(selection *types.Selection) types.Object {
	return selection.Obj()
}

// lockHeldBefore reports whether fd's body contains `<base>.<guard>.Lock()`
// or `.RLock()` lexically before pos. Lexical ordering inside one function
// is a deliberate approximation: it accepts the universal
// lock-then-touch layout and stays silent on lock/unlock windows, which
// the runtime race detector covers.
func lockHeldBefore(pass *Pass, fd *ast.FuncDecl, base, guard string, pos token.Pos) bool {
	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mutexSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || mutexSel.Sel.Name != guard {
			return true
		}
		if exprString(pass.Fset, mutexSel.X) == base {
			held = true
		}
		return true
	})
	return held
}

// freshLocals returns the local variables of fd initialized from a
// composite literal, &composite, or new(T): values this function
// constructed and has not (yet) shared, whose fields it may freely
// initialize without the lock.
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if !constructedValue(pass, as.Rhs[i]) {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func constructedValue(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" && isBuiltin(pass, id) {
			return true
		}
	}
	return false
}

// baseObject resolves the root identifier of a selector base expression
// (x, x.y, x[i].y → x), or nil.
func baseObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// collectAtomicFields finds struct fields that are the target of a
// sync/atomic call (`atomic.AddInt64(&x.f, 1)`): those fields must never
// also be accessed plainly.
func collectAtomicFields(pass *Pass) map[types.Object]string {
	fields := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selection := pass.Info.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					continue
				}
				fields[selection.Obj()] = "atomic." + fn.Name()
			}
			return true
		})
	}
	return fields
}

// checkAtomicMix flags plain selector accesses to fields that are
// elsewhere accessed atomically.
func checkAtomicMix(pass *Pass, fd *ast.FuncDecl, atomicFields map[types.Object]string) {
	if len(atomicFields) == 0 {
		return
	}
	fresh := freshLocals(pass, fd)
	// Selector expressions that appear as &x.f arguments of atomic calls
	// are the sanctioned accesses; collect them to skip.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || funcPkgPath(fn) != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		via, ok := atomicFields[selection.Obj()]
		if !ok {
			return true
		}
		if obj := baseObject(pass, sel.X); obj != nil && fresh[obj] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"plain access to %s.%s, which is accessed via %s elsewhere in this package: mixed atomic/non-atomic access races even under a happens-before the race detector cannot see",
			exprString(pass.Fset, sel.X), selection.Obj().Name(), via)
		return true
	})
}

// exprString renders an expression compactly for matching and messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return strings.Join(strings.Fields(buf.String()), "")
}
