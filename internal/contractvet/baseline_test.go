package contractvet

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestBaselineInSync keeps testdata/baseline.txt — the committed inventory
// of every contractvet escape hatch in the engine — in lockstep with the
// source tree. A new //contractvet: directive anywhere outside this
// package must be added to the baseline in the same change, which makes
// each suppression a visible, reviewed line in the diff.
func TestBaselineInSync(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	got := scanDirectives(t, root)

	data, err := os.ReadFile(filepath.Join("testdata", "baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, " \t\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want = append(want, line)
	}

	if diff := diffLines(want, got); diff != "" {
		t.Errorf("contractvet baseline out of sync with source (update testdata/baseline.txt):\n%s", diff)
	}
}

// scanDirectives walks the repo for //contractvet: directives in non-test,
// non-fixture Go source, returning sorted "<file>: <directive>" lines.
func scanDirectives(t *testing.T, root string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || name == "contractvet" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "//contractvet:") {
				out = append(out, fmt.Sprintf("%s: %s", filepath.ToSlash(rel), trimmed))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func diffLines(want, got []string) string {
	wantSet := make(map[string]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, l := range got {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range want {
		if !gotSet[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
