package contractvet

import (
	"go/ast"
	"go/types"
)

// detPkgSuffixes names the determinism-critical packages: everything on the
// reward path. The worker-count determinism sweep proves these dynamically;
// this analyzer refuses the three classic ways a change breaks them.
var detPkgSuffixes = []string{
	"internal/interp",
	"internal/passes",
	"internal/core",
	"internal/rl",
	"internal/vm",
	"internal/serve",
}

// NondeterminismAnalyzer flags wall-clock reads (time.Now/Since), draws
// from math/rand's shared global source, and unordered map iteration that
// feeds output or order-sensitive accumulation, inside determinism-critical
// packages. The `//contractvet:ordered` directive marks a map range proven
// order-insensitive; collecting keys into a slice that is subsequently
// sorted is recognized and never flagged.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall clocks, global math/rand state, and order-sensitive map iteration in determinism-critical packages",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	if !detPackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
}

func detPackage(path string) bool {
	for _, s := range detPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// globalRandOK lists the math/rand package-level functions that do not
// touch the shared global source.
var globalRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch funcPkgPath(fn) {
	case "time":
		if !isMethod && (fn.Name() == "Now" || fn.Name() == "Since") {
			pass.Reportf(call.Pos(),
				"call to time.%s in determinism-critical package %s: wall-clock reads make rewards irreproducible (route timing through an injected clock or annotate //contractvet:allow nondeterminism -- why)",
				fn.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if !isMethod && !globalRandOK[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to %s.%s uses the process-global random source in determinism-critical package %s: draw from a seeded *rand.Rand instead",
				funcPkgPath(fn), fn.Name(), pass.Pkg.Path())
		}
	}
}

// checkMapRange flags `range m` over a map when the loop body feeds an
// order-sensitive sink: io output, a channel send, appending to or
// concatenating onto state declared outside the loop, or floating-point
// accumulation (integer accumulation commutes and is fine).
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.annots.ordered(pass.Fset, rng.Pos()) {
		return
	}
	sink, sinkVar := findOrderSink(pass, rng)
	if sink == "" {
		return
	}
	// Collect-then-sort is the idiomatic deterministic pattern: an append
	// target that is later passed to sort.*/slices.Sort* is not a finding.
	if sinkVar != nil && sortedAfter(pass, file, rng, sinkVar) {
		return
	}
	pass.Reportf(rng.Pos(),
		"unordered map iteration feeds %s: iteration order varies run to run (sort the keys first, or annotate //contractvet:ordered if order provably cannot matter)",
		sink)
}

// findOrderSink scans the range body for the first order-sensitive sink.
// It returns a description and, for append/concat sinks, the accumulating
// variable.
func findOrderSink(pass *Pass, rng *ast.RangeStmt) (string, types.Object) {
	var sink string
	var sinkVar types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil && funcPkgPath(fn) == "fmt" {
				switch fn.Name() {
				case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
					sink = "fmt." + fn.Name() + " output"
					return false
				}
			}
		case *ast.SendStmt:
			sink = "a channel send"
			return false
		case *ast.AssignStmt:
			if s, v := assignSink(pass, rng, n); s != "" {
				sink, sinkVar = s, v
				return false
			}
		}
		return true
	})
	return sink, sinkVar
}

// assignSink classifies an assignment inside the range body as a sink:
// append to an outer slice, string concatenation onto an outer string, or
// float accumulation into an outer variable.
func assignSink(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) (string, types.Object) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return "", nil
	}
	obj := pass.Info.Uses[lhs]
	if obj == nil || !declaredOutside(obj, rng) {
		return "", nil
	}
	basic, _ := obj.Type().Underlying().(*types.Basic)
	switch as.Tok.String() {
	case "=":
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass, id) {
				if len(call.Args) > 0 {
					if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[first] == obj {
						return "append to " + obj.Name() + " declared outside the loop", obj
					}
				}
			}
		}
		if basic != nil && basic.Info()&types.IsString != 0 {
			if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && bin.Op.String() == "+" {
				if id, ok := ast.Unparen(bin.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					return "string concatenation onto " + obj.Name(), obj
				}
			}
		}
	case "+=":
		if basic != nil && basic.Info()&types.IsString != 0 {
			return "string concatenation onto " + obj.Name(), obj
		}
		if basic != nil && basic.Info()&types.IsFloat != 0 {
			return "floating-point accumulation into " + obj.Name() + " (float addition does not commute)", obj
		}
	}
	return "", nil
}

// isBuiltin reports whether the identifier resolves to a Go builtin (or is
// unresolved, which for "append" only happens when it is the builtin).
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether, lexically after the range statement, v is
// passed to a sort.* or slices.Sort* call anywhere in the same file (the
// collect-keys-then-sort idiom; a lexical check keeps this cheap and errs
// on the quiet side only when the sort is genuinely present).
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, v types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case "sort", "slices":
			for _, arg := range call.Args {
				if mentionsObject(pass, arg, v) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, v types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
