// Package vettest is an analysistest-style fixture harness for the
// contractvet analyzers, built on the standard library alone. Fixture
// packages live under the caller's testdata/src/<importpath>/ exactly as
// with golang.org/x/tools' analysistest; expected findings are declared
// with trailing `// want "regexp"` comments (multiple regexps per line
// allowed), and the harness fails the test on any unmatched finding or
// unmet expectation.
//
// Fixture packages are type-checked for real: imports of other fixture
// packages resolve within testdata/src, and standard-library imports
// compile from GOROOT source, so analyzers exercise the same go/types
// surface they see under `go vet -vettool`.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"autophase/internal/contractvet"
)

// Run loads the fixture package at testdata/src/<pkgpath>, runs the
// analyzers over it, and checks the findings against the `// want`
// expectations in the fixture sources.
func Run(t *testing.T, pkgpath string, analyzers ...*contractvet.Analyzer) {
	t.Helper()
	ld := newLoader(t, "testdata/src")
	pkg, files, fset, info := ld.load(pkgpath)

	diags := contractvet.Run(fset, files, pkg, info, analyzers)
	wants := collectWants(t, fset, files)

	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected finding [%s]: %s", p, d.Analyzer, d.Message)
		}
	}
	wants.reportUnmet(t)
}

// loader typechecks fixture packages rooted at dir, resolving fixture
// imports recursively and standard-library imports from GOROOT source.
type loader struct {
	t    *testing.T
	dir  string
	fset *token.FileSet
	pkgs map[string]*loaded
	std  types.Importer
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// stdImporter compiles standard-library dependencies from GOROOT source
// once per process: source-importing "fmt" or "time" pulls in a sizable
// closure, so every test shares the importer's internal cache.
var stdImporter = sync.OnceValue(func() types.Importer {
	return importer.ForCompiler(token.NewFileSet(), "source", nil)
})

func newLoader(t *testing.T, dir string) *loader {
	return &loader{
		t:    t,
		dir:  dir,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
		std:  stdImporter(),
	}
}

func (ld *loader) load(pkgpath string) (*types.Package, []*ast.File, *token.FileSet, *types.Info) {
	ld.t.Helper()
	l := ld.loadPkg(pkgpath)
	return l.pkg, l.files, ld.fset, l.info
}

func (ld *loader) loadPkg(pkgpath string) *loaded {
	ld.t.Helper()
	if l, ok := ld.pkgs[pkgpath]; ok {
		return l
	}
	dir := filepath.Join(ld.dir, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("vettest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("vettest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("vettest: no Go files in %s", dir)
	}
	info := contractvet.NewInfo()
	tc := &types.Config{Importer: (*fixtureImporter)(ld)}
	pkg, err := tc.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("vettest: typechecking %s: %v", pkgpath, err)
	}
	l := &loaded{pkg: pkg, files: files, info: info}
	ld.pkgs[pkgpath] = l
	return l
}

// fixtureImporter resolves imports during fixture typechecking: fixture
// packages (present under testdata/src) first, the standard library
// otherwise.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(fi)
	if _, err := os.Stat(filepath.Join(ld.dir, filepath.FromSlash(path))); err == nil {
		return ld.loadPkg(path).pkg, nil
	}
	return ld.std.Import(path)
}

// wantSet tracks `// want` expectations by "file:line".
type wantSet struct {
	byLine map[string][]*wantExpect
}

type wantExpect struct {
	re  *regexp.Regexp
	pos string
	met bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{byLine: make(map[string][]*wantExpect)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, pat := range splitQuoted(t, p.String(), m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, pat, err)
					}
					ws.byLine[key] = append(ws.byLine[key], &wantExpect{re: re, pos: p.String()})
				}
			}
		}
	}
	return ws
}

// splitQuoted extracts the quoted regexps of a want comment: either
// "double-quoted" (Go-unquoted) or `backquoted` segments.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pat := strings.ReplaceAll(s[1:end], `\"`, `"`)
			pats = append(pats, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
	}
	return pats
}

func (ws *wantSet) match(key, message string) bool {
	for _, w := range ws.byLine[key] {
		if !w.met && w.re.MatchString(message) {
			w.met = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmet(t *testing.T) {
	t.Helper()
	var unmet []string
	for _, ws := range ws.byLine {
		for _, w := range ws {
			if !w.met {
				unmet = append(unmet, fmt.Sprintf("%s: expected finding matching %q, got none", w.pos, w.re))
			}
		}
	}
	sort.Strings(unmet)
	for _, u := range unmet {
		t.Error(u)
	}
}
