package contractvet

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"
)

// This file reimplements, on the standard library alone, the subset of
// x/tools' unitchecker protocol that `go vet -vettool=...` speaks:
//
//   1. `vet-autophase -V=full` — print a versioned identity line the build
//      cache keys on.
//   2. `vet-autophase -flags` — print the tool's flag definitions as JSON
//      so cmd/go can validate command-line flags.
//   3. `vet-autophase <...>.cfg` — analyze one package unit: the cfg file
//      (written by cmd/go into the work directory) carries the file list,
//      the import map, and the export-data location of every dependency.
//      Diagnostics go to stderr as "file:line:col: message" and the exit
//      status is 2 when any fired; the facts file (VetxOutput) is always
//      written (empty — these analyzers are package-local and need no
//      cross-package facts).

// vetConfig mirrors the JSON cmd/go writes for each vet'd package. Fields
// the tool does not consume are still listed so the decoder stays strict
// about nothing and future cmd/go additions cannot break it.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/vet-autophase.
func Main() {
	log.SetFlags(0)
	log.SetPrefix("vet-autophase: ")

	printFlags := flag.Bool("flags", false, "print flag definitions as JSON and exit (cmd/go protocol)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Var(versionFlag{}, "V", "print version and exit (cmd/go protocol; only -V=full is supported)")
	enabled := make(map[string]*bool)
	for _, a := range Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vet-autophase [flags] <unit>.cfg")
		fmt.Fprintln(os.Stderr, "run it via: go vet -vettool=$(command -v vet-autophase) ./...")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printFlags {
		printFlagDefs(os.Stdout)
		os.Exit(0)
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
		os.Exit(1)
	}
	var active []*Analyzer
	for _, a := range Analyzers() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags, fset, err := runUnit(args[0], active)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) == 0 {
		return
	}
	if *jsonOut {
		printJSONDiags(os.Stdout, fset, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
	}
	os.Exit(2)
}

// runUnit loads, typechecks and analyzes one vet unit.
func runUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The facts file must exist for cmd/go to cache the unit, whether or
	// not we have anything to say; these analyzers use no facts, so an
	// empty file is the complete truth about this package.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		// The unit was scheduled only to produce facts for dependents.
		return nil, nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, nil
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: mapImporter{imp: imp, importMap: cfg.ImportMap, dir: cfg.Dir},
		Error:    func(error) {}, // collect-all; the first error is returned below
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}
	return Run(fset, files, pkg, info, analyzers), fset, nil
}

// mapImporter routes source-level import paths through the unit's
// ImportMap (vendoring, test variants) before delegating to the
// export-data importer.
type mapImporter struct {
	imp       types.Importer
	importMap map[string]string
	dir       string
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if from, ok := m.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, m.dir, 0)
	}
	return m.imp.Import(path)
}

// versionFlag implements the -V=full handshake: cmd/go keys its action
// cache on this line, so it hashes the executable itself — a rebuilt tool
// invalidates cached vet results.
type versionFlag struct{}

func (versionFlag) String() string   { return "" }
func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h[:12]))
	os.Exit(0)
	return nil
}

// printFlagDefs emits the -flags JSON cmd/go parses to learn which flags
// the tool accepts.
func printFlagDefs(w io.Writer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		boolish := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			boolish = b.IsBoolFlag()
		}
		defs = append(defs, jsonFlag{Name: f.Name, Bool: boolish, Usage: f.Usage})
	})
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	w.Write(data)
	fmt.Fprintln(w)
}

// printJSONDiags renders diagnostics as a JSON array of objects with
// posn/analyzer/message fields.
func printJSONDiags(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	type jsonDiag struct {
		Posn     string `json:"posn"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{Posn: fset.Position(d.Pos).String(), Analyzer: d.Analyzer, Message: d.Message}
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	w.Write(data)
	fmt.Fprintln(w)
}
