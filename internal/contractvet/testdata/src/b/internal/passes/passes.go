// Package passes is the changedreport fixture: Run-style functions
// (single bool result) that mutate IR must be able to report change.
package passes

import "b/internal/ir"

// badDSE mutates through a known ir mutator but every return is false.
func badDSE(f *ir.Func) bool { // want `badDSE mutates IR`
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			b.Remove(in)
		}
	}
	return false
}

// goodDSE reports the mutation through a changed flag.
func goodDSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			b.Remove(in)
			changed = true
		}
	}
	return changed
}

// hasBlocks is a pure predicate: bool result, no mutation, no finding.
func hasBlocks(f *ir.Func) bool {
	return len(f.Blocks) > 0
}

type opRewrite struct{}

// Run mutates via a field write without ever reporting change.
func (opRewrite) Run(m *ir.Module) bool { // want `Run mutates IR`
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				in.Op = 1
			}
		}
	}
	return false
}

// namedNeverSet has a named bool result that nothing ever sets.
func namedNeverSet(f *ir.Func) (changed bool) { // want `namedNeverSet mutates IR`
	f.ReplaceAllUses(nil, nil)
	return
}

// namedSet assigns its named result after mutating: no finding.
func namedSet(f *ir.Func) (changed bool) {
	f.ReplaceAllUses(nil, nil)
	changed = true
	return
}

// condReturn has a reachable true return: no finding.
func condReturn(f *ir.Func) bool {
	if len(f.Blocks) > 0 {
		f.ReplaceAllUses(nil, nil)
		return true
	}
	return false
}

//contractvet:allow changedreport -- fixture demonstrating the escape hatch
func allowedMutator(f *ir.Func) bool {
	f.ReplaceAllUses(nil, nil)
	return false
}

// argSwap writes an ir field through an index expression and never
// reports.
func argSwap(in *ir.Instr) bool { // want `argSwap mutates IR`
	in.Args[0] = nil
	return false
}
