// Package ir mirrors the real IR package's mutating surface for the
// changedreport fixtures: its import path ends in internal/ir and it
// declares methods with the known-mutator names.
package ir

type Value interface{ Ref() string }

type Module struct{ Funcs []*Func }

type Func struct {
	Name   string
	Blocks []*Block
}

type Block struct{ Instrs []*Instr }

type Instr struct {
	Op   int
	Args []Value
}

func (b *Block) Remove(in *Instr)             {}
func (b *Block) Append(in *Instr) *Instr      { return in }
func (b *Block) Parent() *Func                { return nil }
func (f *Func) ReplaceAllUses(old, new Value) {}
func (m *Module) RemoveFunc(f *Func)          {}
func (in *Instr) ReplaceUses(old, new Value)  {}
