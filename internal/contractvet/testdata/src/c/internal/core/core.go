// Package core is the recoverguard fixture: goroutines in the evaluation
// engine must install a panic-containment boundary.
package core

func unguardedLit() {
	go func() { // want `goroutine without a panic-containment boundary`
		work()
	}()
}

func guardedLit() {
	go func() {
		defer func() {
			if v := recover(); v != nil {
				_ = v
			}
		}()
		work()
	}()
}

func guardedVar() {
	var body func()
	body = func() {
		defer func() { recover() }()
		work()
		go body() // ok: respawn resolves to the same contained literal
	}
	go body()
}

func guardedNamed() {
	go contained()
}

// contained installs its boundary via a deferred same-package helper.
func contained() {
	defer rescue()
	work()
}

func rescue() {
	if v := recover(); v != nil {
		_ = v
	}
}

func unguardedNamed() {
	go work() // want `goroutine without a panic-containment boundary`
}

// nestedSpawnerOnly defers recover in a *nested* goroutine, which does not
// guard the outer one.
func nestedSpawnerOnly() {
	go func() { // want `goroutine without a panic-containment boundary`
		go func() {
			defer func() { recover() }()
			work()
		}()
		work()
	}()
}

func allowedGo() {
	//contractvet:allow recoverguard -- fixture demonstrating the escape hatch
	go work()
}

func work() {}
