// Package core is the lockdiscipline fixture: "guarded by" field
// annotations and atomic/plain access mixing.
package core

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	mu    sync.RWMutex
	cache map[string]int // guarded by mu
}

func (s *shard) get(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache[key] // ok: RLock taken above
}

func (s *shard) put(key string, v int) {
	s.mu.Lock()
	s.cache[key] = v // ok: Lock taken above
	s.mu.Unlock()
}

func (s *shard) putRacy(key string, v int) {
	s.cache[key] = v // want `s\.cache is guarded by mu`
}

//contractvet:locked cache -- callers hold mu
func (s *shard) putLocked(key string, v int) {
	s.cache[key] = v // ok: the function declares its callers hold mu
}

func newShard() *shard {
	s := &shard{}
	s.cache = make(map[string]int) // ok: construction before publication
	return s
}

type counter struct {
	n     int64
	other int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) racyRead() int64 {
	return c.n // want `plain access to c\.n`
}

func (c *counter) okRead() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) otherRead() int64 {
	return c.other // ok: other is never accessed atomically
}

type badGuard struct {
	data int // guarded by missing // want `no field missing`
}
