// Package pkg is not determinism-critical: the nondeterminism analyzer
// must stay silent on identical constructs here.
package pkg

import (
	"fmt"
	"math/rand"
	"time"
)

func Now() time.Time { return time.Now() }

func Draw() int { return rand.Intn(10) }

func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
