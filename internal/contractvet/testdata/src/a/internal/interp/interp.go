// Package interp is a nondeterminism fixture: its import path ends in
// internal/interp, so it is determinism-critical.
package interp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `call to time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since`
}

func sleepOK(d time.Duration) {
	time.Sleep(d) // ok: sleeping is slow, not nondeterministic
}

func draw() int {
	return rand.Intn(10) // want `process-global random source`
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global random source`
}

func drawSeeded(r *rand.Rand) int {
	return r.Intn(10) // ok: method on an owned, seeded source
}

func newRNG() *rand.Rand {
	return rand.New(rand.NewSource(1)) // ok: constructors touch no global state
}

func printAll(m map[string]int) {
	for k, v := range m { // want `unordered map iteration feeds fmt\.Println output`
		fmt.Println(k, v)
	}
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: keys are sorted right below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `append to keys declared outside the loop`
		keys = append(keys, k)
	}
	return keys
}

func concat(m map[string]int) string {
	var out string
	for k := range m { // want `string concatenation onto out`
		out += k
	}
	return out
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `floating-point accumulation`
		total += v
	}
	return total
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: integer addition commutes
		total += v
	}
	return total
}

func drain(m map[string]int, ch chan<- string) {
	for k := range m { // want `a channel send`
		ch <- k
	}
}

func orderedDirective(m map[string]int, ch chan<- string) {
	//contractvet:ordered
	for k := range m { // ok: the directive asserts order cannot matter here
		ch <- k
	}
}

func allowedClock() time.Time {
	//contractvet:allow nondeterminism -- fixture demonstrating the escape hatch
	return time.Now()
}

func rangeSlice(xs []string) {
	for _, x := range xs { // ok: slices iterate in order
		fmt.Println(x)
	}
}
