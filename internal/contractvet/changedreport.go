package contractvet

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ChangedReportAnalyzer is the static complement to FuzzCloneCOW's
// differential check of the changed-report contract: a Run-style function
// in internal/passes (single bool result) that calls a known-mutating ir
// method, or writes a field of an ir type, yet can never return anything
// but false, silently mutates a module the copy-on-write cache will keep
// reusing as "unchanged". The dynamic fuzzer catches such a pass only when
// a fuzz input happens to drive the mutating path; this flags it at vet
// time.
var ChangedReportAnalyzer = &Analyzer{
	Name: "changedreport",
	Doc:  "flag pass implementations that mutate IR but can never report change",
	Run:  runChangedReport,
}

// irMutators are the ir methods that structurally mutate a module. Pure
// queries (Parent, Succs, Uses, ...) and COW bookkeeping (Seal,
// MaterializeAll — semantics-preserving by contract) are excluded.
var irMutators = map[string]bool{
	// Block surgery.
	"Append": true, "Prepend": true, "InsertBefore": true,
	"InsertBeforeTerm": true, "Remove": true,
	// Func/Module surgery.
	"NewBlock": true, "AddBlockAfter": true, "RemoveBlock": true,
	"PrependBlock": true, "ReplaceAllUses": true,
	"NewFunc": true, "NewGlobal": true, "RemoveFunc": true, "RemoveGlobal": true,
	// Instr rewrites.
	"ReplaceTarget": true, "SetPhiIncoming": true, "RemovePhiIncoming": true,
	"ReplaceUses": true,
}

func runChangedReport(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/passes") {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !singleBoolResult(pass, fd) {
				continue
			}
			mutNode, mutDesc := firstIRMutation(pass, fd.Body)
			if mutDesc == "" {
				continue
			}
			if mayReportChange(pass, fd) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"%s mutates IR (%s at %s) but every return is false: the changed report is a contract — the engine reuses the input module and its fingerprint for runs reported unchanged",
				fd.Name.Name, mutDesc, pass.Fset.Position(mutNode.Pos()))
		}
	}
}

func singleBoolResult(pass *Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	tv, ok := pass.Info.Types[res.List[0].Type]
	if !ok {
		return false
	}
	basic, _ := tv.Type.Underlying().(*types.Basic)
	return basic != nil && basic.Kind() == types.Bool
}

// firstIRMutation finds a call to a known-mutating ir method, or an
// assignment through a field of an ir-declared type, inside body. Nested
// function literals are included: a mutation is a mutation wherever the
// closure runs.
func firstIRMutation(pass *Pass, body *ast.BlockStmt) (pos ast.Node, desc string) {
	var found string
	var at ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !irMutators[sel.Sel.Name] {
				return true
			}
			selection := pass.Info.Selections[sel]
			if selection == nil {
				return true
			}
			if typeDeclaredIn(selection.Recv(), "internal/ir") {
				found = "call to ir." + recvTypeName(selection.Recv()) + "." + sel.Sel.Name
				at = n
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if d := irFieldWrite(pass, lhs); d != "" {
					found, at = d, n
					break
				}
			}
		}
		return true
	})
	if at == nil {
		return body, ""
	}
	return at, found
}

// irFieldWrite reports an assignment target of the form x.Field or
// x.Field[i] where x is an ir-declared type (e.g. in.Op = ...,
// in.Args[0] = v, f.Blocks = ...).
func irFieldWrite(pass *Pass, lhs ast.Expr) string {
	e := ast.Unparen(lhs)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	if !typeDeclaredIn(selection.Recv(), "internal/ir") {
		return ""
	}
	return "write to ir." + recvTypeName(selection.Recv()) + "." + sel.Sel.Name
}

func recvTypeName(t types.Type) string {
	if named := namedFromType(t); named != nil {
		return named.Obj().Name()
	}
	return t.String()
}

// mayReportChange reports whether the function has any path that returns a
// value not provably the constant false: a non-false return expression, or
// (with a named result) any assignment of a possibly-true value to it.
func mayReportChange(pass *Pass, fd *ast.FuncDecl) bool {
	resultVar := namedResultVar(pass, fd)
	may := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if may {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's returns are its own; but assignments to the
			// named result from inside still count, so only skip returns.
			// Simplest sound treatment: descend (its returns can only
			// make us report less).
			return true
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				// Naked return: the named result's assignments decide.
				return true
			}
			if !constantFalse(pass, n.Results[0]) {
				may = true
			}
		case *ast.AssignStmt:
			if resultVar == nil {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || pass.Info.Uses[id] != resultVar {
					continue
				}
				if n.Tok.String() != "=" {
					may = true // |=, etc.
					continue
				}
				if i < len(n.Rhs) && !constantFalse(pass, n.Rhs[i]) {
					may = true
				}
				if len(n.Rhs) != len(n.Lhs) {
					may = true // multi-value assignment
				}
			}
		case *ast.UnaryExpr:
			// &changed escaping means anything could write it.
			if resultVar != nil && n.Op.String() == "&" {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == resultVar {
					may = true
				}
			}
		}
		return true
	})
	return may
}

func namedResultVar(pass *Pass, fd *ast.FuncDecl) types.Object {
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) != 1 {
		return nil
	}
	return pass.Info.Defs[res.List[0].Names[0]]
}

func constantFalse(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}
