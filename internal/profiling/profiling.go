// Package profiling wires the stdlib pprof profilers into the CLIs: both
// cmd/autophase and cmd/experiments expose -cpuprofile/-memprofile flags
// through Start, so search-loop hot spots (pass application, fingerprinting,
// the interpreter) can be profiled on real workloads without a rebuild.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges a
// heap profile into memPath (when non-empty). The returned stop function
// flushes both; callers defer it from main. Either path being empty makes
// the corresponding profile a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: create %s: %w", cpuPath, err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: create %s: %v\n", memPath, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: write heap profile: %v\n", err)
			}
		}
	}, nil
}
