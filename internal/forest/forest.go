// Package forest implements CART decision trees and random forests with
// Gini-impurity feature importances — the tool §4 of the paper uses to
// quantify which program features and previously-applied passes predict
// whether a pass will improve the circuit, and to shrink the RL state and
// action spaces.
package forest

import (
	"math/rand"
	"sort"
)

// Config bounds tree growth.
type Config struct {
	Trees       int
	MaxDepth    int
	MinSamples  int     // minimum samples to attempt a split
	FeatureFrac float64 // fraction of features tried per split (0 = sqrt)
	Seed        int64
}

// DefaultConfig is a reasonable forest for the importance analysis.
var DefaultConfig = Config{Trees: 40, MaxDepth: 10, MinSamples: 8, Seed: 1}

type node struct {
	feature  int
	thresh   float64
	left     *node
	right    *node
	leafProb float64 // P(label=1) at a leaf
	isLeaf   bool
}

// Tree is one CART classifier.
type Tree struct {
	root       *node
	importance []float64 // un-normalized Gini decrease per feature
}

// Forest is a bagged ensemble of trees.
type Forest struct {
	Cfg   Config
	Trees []*Tree
	nfeat int
}

// gini computes the impurity of a label multiset given counts.
func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

// Fit trains a forest on X (rows of features) and binary labels y.
func Fit(cfg Config, X [][]float64, y []int) *Forest {
	if len(X) == 0 {
		return &Forest{Cfg: cfg}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{Cfg: cfg, nfeat: len(X[0])}
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		tr := &Tree{importance: make([]float64, f.nfeat)}
		tr.root = grow(cfg, rng, X, y, idx, 0, tr.importance)
		f.Trees = append(f.Trees, tr)
	}
	return f
}

func grow(cfg Config, rng *rand.Rand, X [][]float64, y []int, idx []int, depth int, imp []float64) *node {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	leaf := func() *node {
		return &node{isLeaf: true, leafProb: float64(pos) / float64(max(1, len(idx)))}
	}
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamples || pos == 0 || pos == len(idx) {
		return leaf()
	}
	nfeat := len(X[0])
	ntry := int(cfg.FeatureFrac * float64(nfeat))
	if ntry <= 0 {
		ntry = intSqrt(nfeat)
	}
	parent := gini(pos, len(idx))

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	tried := rng.Perm(nfeat)[:ntry]
	vals := make([]float64, 0, len(idx))
	for _, ft := range tried {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][ft])
		}
		sort.Float64s(vals)
		// Candidate thresholds at value midpoints (deduplicated).
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			th := (vals[k] + vals[k-1]) / 2
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, i := range idx {
				if X[i][ft] <= th {
					ln++
					lp += y[i]
				} else {
					rn++
					rp += y[i]
				}
			}
			if ln == 0 || rn == 0 {
				continue
			}
			w := float64(len(idx))
			child := float64(ln)/w*gini(lp, ln) + float64(rn)/w*gini(rp, rn)
			gain := parent - child
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, ft, th
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return leaf()
	}
	imp[bestFeat] += bestGain * float64(len(idx))
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &node{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    grow(cfg, rng, X, y, li, depth+1, imp),
		right:   grow(cfg, rng, X, y, ri, depth+1, imp),
	}
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PredictProb returns the ensemble probability that the label is 1.
func (f *Forest) PredictProb(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0.5
	}
	var s float64
	for _, t := range f.Trees {
		n := t.root
		for !n.isLeaf {
			if x[n.feature] <= n.thresh {
				n = n.left
			} else {
				n = n.right
			}
		}
		s += n.leafProb
	}
	return s / float64(len(f.Trees))
}

// Predict returns the majority-vote class.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}

// Importances returns mean-decrease-impurity feature importances,
// normalized to sum to 1 (all zeros when no split was ever made).
func (f *Forest) Importances() []float64 {
	imp := make([]float64, f.nfeat)
	for _, t := range f.Trees {
		for i, v := range t.importance {
			imp[i] += v
		}
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}

// Accuracy evaluates classification accuracy on a labelled set.
func (f *Forest) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i := range X {
		if f.Predict(X[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}
