package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth builds a dataset where only feature 2 matters: y = x2 > 0.5.
func synth(n int, rng *rand.Rand) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if X[i][2] > 0.5 {
			y[i] = 1
		}
	}
	return X, y
}

func TestForestLearnsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := synth(400, rng)
	f := Fit(DefaultConfig, X, y)
	Xt, yt := synth(200, rand.New(rand.NewSource(2)))
	if acc := f.Accuracy(Xt, yt); acc < 0.95 {
		t.Fatalf("accuracy %.3f on trivial task", acc)
	}
}

func TestImportanceIdentifiesFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := synth(400, rng)
	f := Fit(DefaultConfig, X, y)
	imp := f.Importances()
	for i, v := range imp {
		if i != 2 && v > imp[2] {
			t.Fatalf("feature %d importance %.3f exceeds the true feature's %.3f", i, v, imp[2])
		}
	}
	if imp[2] < 0.5 {
		t.Fatalf("true feature importance too low: %v", imp)
	}
}

func TestImportancesNormalized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		X, y := synth(100, rng)
		cfg := DefaultConfig
		cfg.Trees = 10
		cfg.Seed = seed
		fr := Fit(cfg, X, y)
		var sum float64
		for _, v := range fr.Importances() {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9 || sum == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestForestDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := synth(200, rng)
	a := Fit(DefaultConfig, X, y)
	b := Fit(DefaultConfig, X, y)
	for i := 0; i < 50; i++ {
		x := []float64{rand.Float64(), rand.Float64(), rand.Float64(), rand.Float64()}
		if a.PredictProb(x) != b.PredictProb(x) {
			t.Fatal("same seed, different forests")
		}
	}
}

func TestEmptyAndConstantData(t *testing.T) {
	f := Fit(DefaultConfig, nil, nil)
	if p := f.PredictProb([]float64{1}); p != 0.5 {
		t.Fatalf("empty forest prob %v", p)
	}
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{1, 1, 1, 1}
	f = Fit(DefaultConfig, X, y)
	if f.Predict([]float64{1, 1}) != 1 {
		t.Fatal("constant-label forest mispredicts")
	}
	var sum float64
	for _, v := range f.Importances() {
		sum += v
	}
	if sum != 0 {
		t.Fatal("no split should mean zero importances")
	}
}
