package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"autophase/internal/ir"
)

// simpleMain builds main() { print(body(...)); return r }-style modules.
func arithModule(op ir.Op, a, b int64) *ir.Module {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	bl.SetInsert(f.NewBlock("entry"))
	v := bl.Binary(op, ir.ConstInt(ir.I32, a), ir.ConstInt(ir.I32, b))
	bl.Print(v)
	bl.Ret(v)
	return m
}

func TestArithmeticMatchesEval(t *testing.T) {
	f := func(a, b int32, opSel uint8) bool {
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr}
		op := ops[int(opSel)%len(ops)]
		m := arithModule(op, int64(a), int64(b))
		res, err := Run(m, DefaultLimits)
		if err != nil {
			return false
		}
		want := ir.EvalBinary(op, ir.I32, int64(a), int64(b))
		return res.Exit == want && len(res.Trace) == 1 && res.Trace[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	m := arithModule(ir.OpSDiv, 5, 0)
	_, err := Run(m, DefaultLimits)
	if !errors.Is(err, ErrDivByZero) {
		t.Fatalf("want ErrDivByZero, got %v", err)
	}
}

func TestMemoryOps(t *testing.T) {
	m := ir.NewModule("mem")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	bl.SetInsert(f.NewBlock("entry"))
	arr := bl.Alloca(ir.ArrayOf(ir.I32, 4))
	for i := int64(0); i < 4; i++ {
		bl.Store(ir.ConstInt(ir.I32, i*i), bl.GEP(arr, ir.ConstInt(ir.I32, i)))
	}
	s := bl.Add(bl.Load(bl.GEP(arr, ir.ConstInt(ir.I32, 2))),
		bl.Load(bl.GEP(arr, ir.ConstInt(ir.I32, 3))))
	bl.Ret(s)
	res, err := Run(m, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 4+9 {
		t.Fatalf("exit = %d, want 13", res.Exit)
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	m := ir.NewModule("oob")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	bl.SetInsert(f.NewBlock("entry"))
	arr := bl.Alloca(ir.ArrayOf(ir.I32, 4))
	v := bl.Load(bl.GEP(arr, ir.ConstInt(ir.I32, 9)))
	bl.Ret(v)
	_, err := Run(m, DefaultLimits)
	if !errors.Is(err, ErrOOB) {
		t.Fatalf("want ErrOOB, got %v", err)
	}
}

func TestGlobalsInitialized(t *testing.T) {
	m := ir.NewModule("g")
	g := m.NewGlobal("tab", ir.ArrayOf(ir.I32, 3), []int64{10, 20, 30}, true)
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	bl.SetInsert(f.NewBlock("entry"))
	v := bl.Load(bl.GEP(g, ir.ConstInt(ir.I32, 1)))
	bl.Ret(v)
	res, err := Run(m, DefaultLimits)
	if err != nil || res.Exit != 20 {
		t.Fatalf("global read: %v %v", res, err)
	}
}

func TestStepLimit(t *testing.T) {
	m := ir.NewModule("inf")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	e := f.NewBlock("entry")
	bl.SetInsert(e)
	bl.Br(e) // infinite loop
	_, err := Run(m, Limits{MaxSteps: 1000, MaxDepth: 4, MaxCells: 100})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	m := ir.NewModule("rec")
	f := m.NewFunc("f", ir.I32, ir.I32)
	bl := ir.NewBuilder()
	bl.SetInsert(f.NewBlock("entry"))
	r := bl.Call(f, f.Params[0]) // f(x) = f(x): infinite recursion
	bl.Ret(r)
	mn := m.NewFunc("main", ir.I32)
	bl.SetInsert(mn.NewBlock("entry"))
	bl.Ret(bl.Call(f, ir.ConstInt(ir.I32, 1)))
	_, err := Run(m, Limits{MaxSteps: 1 << 20, MaxDepth: 16, MaxCells: 100})
	if !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("want ErrDepthLimit, got %v", err)
	}
}

func TestMemsetSemantics(t *testing.T) {
	m := ir.NewModule("ms")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	bl.SetInsert(f.NewBlock("entry"))
	arr := bl.Alloca(ir.ArrayOf(ir.I32, 8))
	bl.Memset(arr, ir.ConstInt(ir.I32, 7), ir.ConstInt(ir.I32, 8))
	s := bl.Add(bl.Load(bl.GEP(arr, ir.ConstInt(ir.I32, 0))),
		bl.Load(bl.GEP(arr, ir.ConstInt(ir.I32, 7))))
	bl.Ret(s)
	res, err := Run(m, DefaultLimits)
	if err != nil || res.Exit != 14 {
		t.Fatalf("memset: exit=%v err=%v", res.Exit, err)
	}
	if res.MemsetCells != 8 {
		t.Fatalf("MemsetCells = %d", res.MemsetCells)
	}
}

func TestBlockProfileCounts(t *testing.T) {
	// A counted loop executing its body 10 times.
	m := ir.NewModule("loop")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bl.SetInsert(entry)
	bl.Br(header)
	bl.SetInsert(header)
	iv := bl.Phi(ir.I32)
	cond := bl.ICmp(ir.CmpSLT, iv, ir.ConstInt(ir.I32, 10))
	bl.CondBr(cond, body, exit)
	bl.SetInsert(body)
	next := bl.Add(iv, ir.ConstInt(ir.I32, 1))
	bl.Br(header)
	iv.SetPhiIncoming(entry, ir.ConstInt(ir.I32, 0))
	iv.SetPhiIncoming(body, next)
	bl.SetInsert(exit)
	bl.Ret(iv)

	res, err := Run(m, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 10 {
		t.Fatalf("exit = %d", res.Exit)
	}
	if res.Blocks[header] != 11 || res.Blocks[body] != 10 || res.Blocks[exit] != 1 || res.Blocks[entry] != 1 {
		t.Fatalf("profile: header=%d body=%d exit=%d entry=%d",
			res.Blocks[header], res.Blocks[body], res.Blocks[exit], res.Blocks[entry])
	}
}

func TestDeterminism(t *testing.T) {
	m := arithModule(ir.OpMul, 12345, 678)
	a, _ := Run(m, DefaultLimits)
	b, _ := Run(m, DefaultLimits)
	if a.Exit != b.Exit || a.Steps != b.Steps {
		t.Fatal("interpreter nondeterministic")
	}
}

func TestNoMain(t *testing.T) {
	m := ir.NewModule("empty")
	if _, err := Run(m, DefaultLimits); !errors.Is(err, ErrNoMain) {
		t.Fatalf("want ErrNoMain, got %v", err)
	}
}

func TestSwitchDispatch(t *testing.T) {
	m := ir.NewModule("sw")
	f := m.NewFunc("main", ir.I32)
	bl := ir.NewBuilder()
	entry := f.NewBlock("entry")
	c1 := f.NewBlock("c1")
	c2 := f.NewBlock("c2")
	def := f.NewBlock("def")
	bl.SetInsert(entry)
	bl.Switch(ir.ConstInt(ir.I32, 2), def, []int64{1, 2}, []*ir.Block{c1, c2})
	bl.SetInsert(c1)
	bl.Ret(ir.ConstInt(ir.I32, 100))
	bl.SetInsert(c2)
	bl.Ret(ir.ConstInt(ir.I32, 200))
	bl.SetInsert(def)
	bl.Ret(ir.ConstInt(ir.I32, 300))
	res, err := Run(m, DefaultLimits)
	if err != nil || res.Exit != 200 {
		t.Fatalf("switch: exit=%d err=%v", res.Exit, err)
	}
}
