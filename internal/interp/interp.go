// Package interp executes IR modules directly. It stands in for the LegUp
// software-trace profiler from Huang et al. 2013: running the program yields
// per-basic-block execution counts, which the HLS cycle profiler multiplies
// by per-block FSM state counts to estimate the circuit's clock cycles. It
// also provides the semantic ground truth the pass property tests compare
// against (exit value plus observable print trace).
package interp

import (
	"errors"
	"fmt"
	"time"

	"autophase/internal/faults"
	"autophase/internal/ir"
)

// Limits bound an execution so that generated programs which loop too long
// are filtered out, mirroring the paper's "filter out programs that take
// more than five minutes" step.
type Limits struct {
	MaxSteps int // total instructions executed
	MaxDepth int // call depth
	MaxCells int // total memory cells allocated
	// Deadline bounds the wall-clock time of one Run; zero means unbounded.
	// Unlike the step limit it also catches stalls whose per-step cost is
	// pathological rather than whose step count is. It is polled every
	// pollStride steps, so enforcement is approximate by up to one stride.
	// A wall-clock bound is inherently nondeterministic; leave it zero when
	// bit-identical results across runs matter more than liveness.
	Deadline time.Duration
}

// DefaultLimits are generous enough for all bundled benchmarks.
var DefaultLimits = Limits{MaxSteps: 4_000_000, MaxDepth: 256, MaxCells: 1 << 20}

// Result is the outcome of executing a module's main function.
type Result struct {
	Exit        int64               // return value of main
	Trace       []int64             // values printed via the print intrinsic
	Steps       int                 // instructions executed
	Blocks      map[*ir.Block]int64 // per-block execution counts (the profile)
	Calls       map[*ir.Func]int64  // per-function invocation counts
	MemsetCells int64               // total cells written by memset intrinsics
}

// Errors reported by the interpreter.
var (
	ErrStepLimit  = errors.New("interp: step limit exceeded")
	ErrDepthLimit = errors.New("interp: call depth exceeded")
	ErrMemLimit   = errors.New("interp: memory limit exceeded")
	ErrDivByZero  = errors.New("interp: division by zero")
	ErrOOB        = errors.New("interp: out-of-bounds memory access")
	ErrNoMain     = errors.New("interp: module has no main function")
	ErrUnreach    = errors.New("interp: executed unreachable")
	ErrDeadline   = errors.New("interp: wall-clock deadline exceeded")
)

// pollStride is how many interpreter steps may pass between deadline (and
// fault-injection) polls: frequent enough to bound overruns, rare enough
// that the poll branch is invisible in the hot loop.
const pollStride = 4096

type object struct{ cells []int64 }

type machine struct {
	lim      Limits
	steps    int
	cells    int
	nextPoll int       // step count of the next deadline/injection poll
	deadline time.Time // zero when Limits.Deadline is unset
	objs     []*object
	gaddrs   map[*ir.Global]int64
	res      *Result
}

// poll is the strided liveness check: an injected stall and a blown
// wall-clock deadline both surface as ErrDeadline. The first poll runs on
// the first executed block so a sub-stride program still honours a tiny
// deadline.
func (m *machine) poll() error {
	m.nextPoll = m.steps + pollStride
	if faults.Hit(faults.InterpStall) {
		return fmt.Errorf("%w (injected stall)", ErrDeadline)
	}
	//contractvet:allow nondeterminism -- Limits.Deadline is opt-in (default 0 = off) and documented as trading determinism for a wall-clock bound
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		return ErrDeadline
	}
	return nil
}

const offBits = 28 // low bits of a pointer hold the (signed-wrapped) offset

func encodePtr(obj int, off int64) int64 {
	return int64(obj+1)<<offBits | (off & ((1 << offBits) - 1))
}

func decodePtr(p int64) (obj int, off int64) {
	return int(p>>offBits) - 1, p & ((1 << offBits) - 1)
}

// Run executes mod's main function under the given limits.
func Run(mod *ir.Module, lim Limits) (*Result, error) {
	main := mod.Func("main")
	if main == nil {
		return nil, ErrNoMain
	}
	m := &machine{
		lim:    lim,
		gaddrs: make(map[*ir.Global]int64),
		res: &Result{
			Blocks: make(map[*ir.Block]int64),
			Calls:  make(map[*ir.Func]int64),
		},
	}
	if lim.Deadline > 0 {
		//contractvet:allow nondeterminism -- deadline anchor for the opt-in wall-clock bound; never read when Deadline is 0
		m.deadline = time.Now().Add(lim.Deadline)
	}
	for _, g := range mod.Globals {
		n := g.NumElems()
		if m.cells+n > lim.MaxCells {
			return nil, ErrMemLimit
		}
		obj := &object{cells: make([]int64, n)}
		copy(obj.cells, g.Init)
		m.objs = append(m.objs, obj)
		m.cells += n
		m.gaddrs[g] = encodePtr(len(m.objs)-1, 0)
	}
	var args []int64
	for range main.Params {
		args = append(args, 0)
	}
	exit, err := m.call(main, args, 0)
	if err != nil {
		return m.res, err
	}
	m.res.Exit = exit
	m.res.Steps = m.steps
	return m.res, nil
}

func (m *machine) alloc(n int) (int64, error) {
	if m.cells+n > m.lim.MaxCells {
		return 0, ErrMemLimit
	}
	m.objs = append(m.objs, &object{cells: make([]int64, n)})
	m.cells += n
	return encodePtr(len(m.objs)-1, 0), nil
}

func (m *machine) load(p int64) (int64, error) {
	obj, off := decodePtr(p)
	if obj < 0 || obj >= len(m.objs) || off < 0 || off >= int64(len(m.objs[obj].cells)) {
		return 0, fmt.Errorf("%w: obj=%d off=%d", ErrOOB, obj, off)
	}
	return m.objs[obj].cells[off], nil
}

func (m *machine) store(p, v int64) error {
	obj, off := decodePtr(p)
	if obj < 0 || obj >= len(m.objs) || off < 0 || off >= int64(len(m.objs[obj].cells)) {
		return fmt.Errorf("%w: obj=%d off=%d", ErrOOB, obj, off)
	}
	m.objs[obj].cells[off] = v
	return nil
}

type frame struct {
	vals map[ir.Value]int64
}

func (fr *frame) get(m *machine, v ir.Value) (int64, error) {
	switch x := v.(type) {
	case *ir.Const:
		return x.Val, nil
	case *ir.Undef:
		return 0, nil
	case *ir.Global:
		return m.gaddrs[x], nil
	default:
		val, ok := fr.vals[v]
		if !ok {
			return 0, fmt.Errorf("interp: undefined value %s", v.Ref())
		}
		return val, nil
	}
}

func (m *machine) call(f *ir.Func, args []int64, depth int) (int64, error) {
	if depth > m.lim.MaxDepth {
		return 0, ErrDepthLimit
	}
	m.res.Calls[f]++
	fr := &frame{vals: make(map[ir.Value]int64, f.NumInstrs())}
	for i, p := range f.Params {
		if i < len(args) {
			fr.vals[p] = args[i]
		}
	}
	blk := f.Entry()
	var prev *ir.Block
	for {
		m.res.Blocks[blk]++
		if m.steps >= m.nextPoll {
			if err := m.poll(); err != nil {
				return 0, err
			}
		}
		// Phis evaluate atomically against the incoming edge.
		phis := blk.Phis()
		if len(phis) > 0 {
			tmp := make([]int64, len(phis))
			for i, phi := range phis {
				v, ok := phi.PhiIncoming(prev)
				if !ok {
					return 0, fmt.Errorf("interp: phi in %s missing incoming for pred", f.Name)
				}
				x, err := fr.get(m, v)
				if err != nil {
					return 0, err
				}
				tmp[i] = x
				m.steps++
			}
			for i, phi := range phis {
				fr.vals[phi] = tmp[i]
			}
		}
		if m.steps > m.lim.MaxSteps {
			return 0, ErrStepLimit
		}
		for _, in := range blk.Instrs[len(phis):] {
			m.steps++
			if m.steps > m.lim.MaxSteps {
				return 0, ErrStepLimit
			}
			switch {
			case in.Op.IsBinary():
				a, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				b, err := fr.get(m, in.Args[1])
				if err != nil {
					return 0, err
				}
				if (in.Op == ir.OpSDiv || in.Op == ir.OpSRem) && b == 0 {
					return 0, ErrDivByZero
				}
				fr.vals[in] = ir.EvalBinary(in.Op, in.Ty, a, b)
			case in.Op == ir.OpICmp:
				a, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				b, err := fr.get(m, in.Args[1])
				if err != nil {
					return 0, err
				}
				bits := 64
				if t := in.Args[0].Type(); t.IsInt() {
					bits = t.Bits
				}
				if in.Pred.Eval(a, b, bits) {
					fr.vals[in] = 1
				} else {
					fr.vals[in] = 0
				}
			case in.Op == ir.OpSelect:
				c, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				var v int64
				if c != 0 {
					v, err = fr.get(m, in.Args[1])
				} else {
					v, err = fr.get(m, in.Args[2])
				}
				if err != nil {
					return 0, err
				}
				fr.vals[in] = v
			case in.Op == ir.OpAlloca:
				n := 1
				if in.AllocTy.Kind == ir.ArrayKind {
					n = in.AllocTy.Len
				}
				p, err := m.alloc(n)
				if err != nil {
					return 0, err
				}
				fr.vals[in] = p
			case in.Op == ir.OpLoad:
				p, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				v, err := m.load(p)
				if err != nil {
					return 0, err
				}
				fr.vals[in] = in.Ty.TruncVal(v)
			case in.Op == ir.OpStore:
				v, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				p, err := fr.get(m, in.Args[1])
				if err != nil {
					return 0, err
				}
				if err := m.store(p, v); err != nil {
					return 0, err
				}
			case in.Op == ir.OpGEP:
				p, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				idx, err := fr.get(m, in.Args[1])
				if err != nil {
					return 0, err
				}
				obj, off := decodePtr(p)
				fr.vals[in] = encodePtr(obj, off+idx)
			case in.Op == ir.OpMemset:
				p, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				v, err := fr.get(m, in.Args[1])
				if err != nil {
					return 0, err
				}
				n, err := fr.get(m, in.Args[2])
				if err != nil {
					return 0, err
				}
				obj, off := decodePtr(p)
				m.res.MemsetCells += n
				for i := int64(0); i < n; i++ {
					m.steps++
					if err := m.store(encodePtr(obj, off+i), v); err != nil {
						return 0, err
					}
				}
			case in.Op.IsCast():
				v, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				fr.vals[in] = ir.EvalCast(in.Op, in.Args[0].Type(), in.Ty, v)
			case in.Op == ir.OpCall:
				cargs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					v, err := fr.get(m, a)
					if err != nil {
						return 0, err
					}
					cargs[i] = v
				}
				rv, err := m.call(in.Callee, cargs, depth+1)
				if err != nil {
					return 0, err
				}
				if !in.Ty.IsVoid() {
					fr.vals[in] = rv
				}
			case in.Op == ir.OpPrint:
				v, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				m.res.Trace = append(m.res.Trace, v)
			case in.Op == ir.OpRet:
				if len(in.Args) == 0 {
					return 0, nil
				}
				return fr.get(m, in.Args[0])
			case in.Op == ir.OpBr:
				if len(in.Blocks) == 1 {
					prev, blk = blk, in.Blocks[0]
				} else {
					c, err := fr.get(m, in.Args[0])
					if err != nil {
						return 0, err
					}
					if c != 0 {
						prev, blk = blk, in.Blocks[0]
					} else {
						prev, blk = blk, in.Blocks[1]
					}
				}
			case in.Op == ir.OpSwitch:
				v, err := fr.get(m, in.Args[0])
				if err != nil {
					return 0, err
				}
				target := in.Blocks[0]
				for i, cv := range in.Cases {
					if cv == v {
						target = in.Blocks[i+1]
						break
					}
				}
				prev, blk = blk, target
			case in.Op == ir.OpUnreachable:
				return 0, ErrUnreach
			default:
				return 0, fmt.Errorf("interp: unhandled op %s", in.Op)
			}
			if in.IsTerminator() {
				break
			}
		}
	}
}
