// Ablation benchmarks for the design choices DESIGN.md calls out: what the
// memoization cache, operation chaining and the frequency constraint each
// buy, and how expensive pass application is with and without the enabling
// canonicalization.
package autophase_test

import (
	"testing"

	"autophase/internal/core"
	"autophase/internal/hls"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// BenchmarkAblationCompileCache measures the paper's sampling loop with the
// sequence-memoization cache (RL episodes revisit prefixes constantly).
func BenchmarkAblationCompileCache(b *testing.B) {
	p, err := core.NewProgram("sha", progen.Benchmark("sha"))
	if err != nil {
		b.Fatal(err)
	}
	seqs := [][]int{{38}, {38, 23}, {38, 23, 33}, {38}, {38, 23}, {38, 23, 33}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range seqs {
			p.Compile(s)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Samples()), "profiler-samples")
}

// BenchmarkAblationCompileNoCache pays the full profiler cost per call.
func BenchmarkAblationCompileNoCache(b *testing.B) {
	p, err := core.NewProgram("sha", progen.Benchmark("sha"))
	if err != nil {
		b.Fatal(err)
	}
	seqs := [][]int{{38}, {38, 23}, {38, 23, 33}, {38}, {38, 23}, {38, 23, 33}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range seqs {
			p.ResetSamples(true)
			p.Compile(s)
		}
	}
}

// BenchmarkAblationFrequency sweeps the HLS frequency constraint: lower
// target frequencies chain more logic per state, cutting cycle counts (the
// §3.2 observation).
func BenchmarkAblationFrequency(b *testing.B) {
	m := progen.Benchmark("mpeg2")
	for _, mhz := range []float64{400, 200, 100, 50} {
		cfg := hls.Config{FrequencyMHz: mhz, MemPorts: 2, Dividers: 1}
		b.Run(benchName(mhz), func(b *testing.B) {
			prof := hls.NewProfiler(hls.ProfileOptions{Config: cfg, Engine: hls.EngineInterp})
			var cycles int64
			for i := 0; i < b.N; i++ {
				rep, err := prof.Profile(m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

func benchName(mhz float64) string {
	switch mhz {
	case 400:
		return "400MHz"
	case 200:
		return "200MHz"
	case 100:
		return "100MHz"
	default:
		return "50MHz"
	}
}

// BenchmarkAblationO3VsBestKnown contrasts the fixed -O3 pipeline with the
// best discovered ordering on matmul (the headline gap RL exploits).
func BenchmarkAblationO3VsBestKnown(b *testing.B) {
	orig := progen.Benchmark("matmul")
	best := []int{11, 23, 5, 12, 33, 5, 36, 31} // found by greedy at 2.5k samples
	prof := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})
	b.Run("O3", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			m := orig.Clone()
			passes.ApplyO3(m)
			rep, err := prof.Profile(m)
			if err != nil {
				b.Fatal(err)
			}
			cycles = rep.Cycles
		}
		b.ReportMetric(float64(cycles), "cycles")
	})
	b.Run("BestKnown", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			m := orig.Clone()
			passes.Apply(m, best)
			rep, err := prof.Profile(m)
			if err != nil {
				b.Fatal(err)
			}
			cycles = rep.Cycles
		}
		b.ReportMetric(float64(cycles), "cycles")
	})
}

// BenchmarkAblationAreaObjective contrasts the cycle and area objectives on
// the same search (the §5.1 alternative-reward extension).
func BenchmarkAblationAreaObjective(b *testing.B) {
	p, err := core.NewProgram("matmul", progen.Benchmark("matmul"))
	if err != nil {
		b.Fatal(err)
	}
	unrolled := []int{11, 23, 33} // area-hungry: full unroll
	gentle := []int{38, 31, 30}   // area-lean clean-up
	b.ResetTimer()
	var du, dg, au, ag int64
	for i := 0; i < b.N; i++ {
		du, au, _ = p.CompileArea(unrolled)
		dg, ag, _ = p.CompileArea(gentle)
	}
	b.StopTimer()
	if au <= ag {
		b.Fatalf("unrolling should cost area: %d vs %d", au, ag)
	}
	b.ReportMetric(float64(du)*float64(au)/(float64(dg)*float64(ag)), "area-delay-ratio")
}
