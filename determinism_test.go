// Worker-count determinism sweep: every population-style consumer of the
// evaluation engine must produce bit-identical results (and identical
// sample accounting) at workers=1 and workers=8. This is the engine's core
// contract — parallelism buys wall-clock, never a different answer.
package autophase_test

import (
	"math/rand"
	"reflect"
	"testing"

	"autophase/internal/core"
	"autophase/internal/progen"
	"autophase/internal/rl"
	"autophase/internal/search"
)

// core.Env is a superset of what the rl trainers need; the sweep relies on
// passing core environments straight into rl.
var _ rl.Env = (core.Env)(nil)

func detProgram(t *testing.T, name string) *core.Program {
	t.Helper()
	p, err := core.NewProgram(name, progen.Benchmark(name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestESWorkerDeterminism(t *testing.T) {
	run := func(workers int) ([]int, int64, int) {
		p := detProgram(t, "matmul")
		envCfg := core.DefaultEnv()
		envCfg.Obs = core.ObsFeatures
		envCfg.EpisodeLen = 6
		// The candidate→environment mapping (i%len(envs)) is part of the
		// trajectory, so the env count stays fixed; only Workers varies.
		envs := make([]rl.Env, 8)
		for i := range envs {
			envs[i] = core.NewPhaseEnv(p, envCfg)
		}
		cfg := rl.DefaultES()
		cfg.Hidden = []int{16}
		cfg.Population = 4
		cfg.Seed = 5
		cfg.Workers = workers
		agent := rl.NewES(cfg, envs[0].ObsSize(), envs[0].ActionDims())
		for g := 0; g < 2; g++ {
			agent.Generation(envs)
		}
		best, seq := p.BestCycles()
		return seq, best, p.Samples()
	}
	seq1, best1, n1 := run(1)
	seq8, best8, n8 := run(8)
	if best1 != best8 || !reflect.DeepEqual(seq1, seq8) {
		t.Fatalf("ES best diverged: workers=1 (%d, %v) vs workers=8 (%d, %v)",
			best1, seq1, best8, seq8)
	}
	if n1 != n8 {
		t.Fatalf("ES sample counts diverged: workers=1 %d vs workers=8 %d", n1, n8)
	}
}

func TestGeneticWorkerDeterminism(t *testing.T) {
	run := func(workers int) (search.Result, int) {
		p := detProgram(t, "matmul")
		obj := core.NewEvaluator(p, workers).Objective(8)
		r := search.Genetic(obj, rand.New(rand.NewSource(9)), search.DefaultGA(), 120)
		return r, p.Samples()
	}
	r1, n1 := run(1)
	r8, n8 := run(8)
	if r1.Cycles != r8.Cycles || r1.Samples != r8.Samples || !reflect.DeepEqual(r1.Seq, r8.Seq) {
		t.Fatalf("genetic diverged: workers=1 %+v vs workers=8 %+v", r1, r8)
	}
	if n1 != n8 {
		t.Fatalf("genetic sample counts diverged: workers=1 %d vs workers=8 %d", n1, n8)
	}
}

func TestRandomWorkerDeterminism(t *testing.T) {
	run := func(workers int) (search.Result, int) {
		p := detProgram(t, "qsort")
		obj := core.NewEvaluator(p, workers).Objective(10)
		r := search.Random(obj, rand.New(rand.NewSource(4)), 100)
		return r, p.Samples()
	}
	r1, n1 := run(1)
	r8, n8 := run(8)
	if r1.Cycles != r8.Cycles || !reflect.DeepEqual(r1.Seq, r8.Seq) || n1 != n8 {
		t.Fatalf("random search diverged: workers=1 %+v (%d samples) vs workers=8 %+v (%d samples)",
			r1, n1, r8, n8)
	}
}
