#!/usr/bin/env bash
# bench-json.sh — run a benchmark selection and emit BENCH_<date>.json with
# one {"name", "ns_per_op", "runs"} entry per benchmark, so CI trends are
# machine-diffable across commits.
#
# Usage:
#   scripts/bench-json.sh [out-dir] [bench-regex] [benchtime]
#
# Defaults: out-dir=.  bench-regex='SweepColdStore|SweepWarmStore|HLSProfile'
# benchtime=3x. The output file name embeds today's UTC date
# (BENCH_2025-01-31.json); an existing file for the same day is overwritten.
set -euo pipefail

outdir=${1:-.}
bench=${2:-'SweepColdStore|SweepWarmStore|HLSProfile'}
benchtime=${3:-3x}

out="$outdir/BENCH_$(date -u +%F).json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run=NONE -bench "$bench" -benchtime "$benchtime" . | tee "$raw" >&2

# go test bench lines: "BenchmarkName-8   <runs>   <ns> ns/op [extra metrics]".
awk '
  $1 ~ /^Benchmark/ && $4 == "ns/op" {
    if (n++) printf ",\n"
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"runs\": %s}", name, $3, $2
  }
  END {
    if (n == 0) { print "no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "\n"
  }
' "$raw" | { echo "["; cat; echo "]"; } > "$out"

echo "wrote $out" >&2
