#!/usr/bin/env bash
# Regenerates the lint baseline: `autophase lint -json` over the nine
# bundled benchmarks, a deterministic batch of generated programs, and every
# checked-in example IR file. CI regenerates this and diffs it against
# testdata/lint-baseline.txt, so new lint findings (or lost ones) show up as
# a reviewable baseline change instead of a silent drift.
#
# Usage: scripts/lint-baseline.sh [output-file]
set -u
cd "$(dirname "$0")/.."
out="${1:-testdata/lint-baseline.txt}"
bin="$(mktemp -d)/autophase"
go build -o "$bin" ./cmd/autophase || exit 1
{
  for prog in adpcm aes blowfish dhrystone gsm matmul mpeg2 qsort sha \
    rand:101 rand:202 rand:303 rand:404; do
    "$bin" lint -program "$prog" -json | sed "s|^|$prog |"
  done
  for f in examples/*.ir; do
    "$bin" lint -program "file:$f" -json | sed "s|^|$f |"
  done
} >"$out"
echo "wrote $out" >&2
