#!/usr/bin/env bash
# Regenerates the lint baseline: `autophase lint -json` over the nine
# bundled benchmarks, a deterministic batch of generated programs, and every
# checked-in example IR file. CI regenerates this and diffs it against
# testdata/lint-baseline.txt, so new lint findings (or lost ones) show up as
# a reviewable baseline change instead of a silent drift.
#
# Lint exits 0 (clean) or 1 (findings at error severity); both are expected
# here — the baseline records findings. Anything else (bad flags, unparsable
# program, crash) is a real failure and must kill the script loudly instead
# of silently writing a truncated baseline.
#
# LC_ALL=C pins the collation every text tool in the pipeline uses, so the
# byte order of the baseline — and CI's diff against it — is identical
# across locales.
#
# Usage: scripts/lint-baseline.sh [output-file]
set -u
export LC_ALL=C
cd "$(dirname "$0")/.."
out="${1:-testdata/lint-baseline.txt}"
bin="$(mktemp -d)/autophase"
go build -o "$bin" ./cmd/autophase || exit 1

# run_lint PROG PREFIX appends prefixed lint output to $tmp, tolerating
# exit codes 0 and 1 only.
run_lint() {
  local prog="$1" prefix="$2" rc=0 lines
  lines="$("$bin" lint -program "$prog" -engine auto -json)" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
    echo "lint-baseline: '$bin lint -program $prog -json' exited $rc (expected 0 or 1)" >&2
    exit "$rc"
  fi
  if [ -n "$lines" ]; then
    printf '%s\n' "$lines" | sed "s|^|$prefix |"
  fi
}

{
  for prog in adpcm aes blowfish dhrystone gsm matmul mpeg2 qsort sha \
    rand:101 rand:202 rand:303 rand:404; do
    run_lint "$prog" "$prog"
  done
  for f in examples/*.ir; do
    run_lint "file:$f" "$f"
  done
} >"$out"
echo "wrote $out" >&2
