// Importance: reproduce the paper's §4 random-forest analysis of which
// program features and previously-applied passes predict whether a pass
// will improve the circuit (Figures 5 and 6).
//
// Run with:
//
//	go run ./examples/importance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"autophase/internal/core"
	"autophase/internal/experiments"
	"autophase/internal/features"
	"autophase/internal/forest"
	"autophase/internal/passes"
)

func main() {
	const nPrograms = 8
	fmt.Printf("generating %d random programs and exploration tuples...\n", nPrograms)
	train, err := experiments.RandomPrograms(nPrograms, 555)
	if err != nil {
		log.Fatal(err)
	}
	tuples := core.CollectTuples(train, 6, 16, rand.New(rand.NewSource(1)))
	fmt.Printf("collected %d feature-action-reward tuples\n", len(tuples))

	cfg := forest.DefaultConfig
	cfg.Trees = 20
	imp := core.AnalyzeImportance(tuples, cfg)

	fmt.Println()
	fmt.Print(experiments.RenderHeatMap(
		"Figure 5: program-feature importance per pass", imp.FeatureByPass))
	fmt.Println()
	fmt.Print(experiments.RenderHeatMap(
		"Figure 6: previously-applied-pass importance per pass", imp.PassByPass))

	// The paper's reading of the maps: which pairs stand out.
	fmt.Println("\nstrongest feature->pass correlations:")
	type hit struct {
		pass, feat int
		v          float64
	}
	var hits []hit
	for pi, row := range imp.FeatureByPass {
		for fi, v := range row {
			hits = append(hits, hit{pi, fi, v})
		}
	}
	for i := 0; i < 8; i++ {
		best := i
		for j := i + 1; j < len(hits); j++ {
			if hits[j].v > hits[best].v {
				best = j
			}
		}
		hits[i], hits[best] = hits[best], hits[i]
		h := hits[i]
		fmt.Printf("  %-22s <- %s (%.2f)\n",
			passes.Table1Names[h.pass], features.Names[h.feat], h.v)
	}

	fmt.Println("\nfiltered spaces for the generalization experiments:")
	fmt.Print(experiments.RenderImportanceSummary(imp, 12, 10))
}
