// Phase-ordering demo: the paper's Figures 1–3 example, reproduced on this
// IR. A norm() loop divides every element by mag(n, in), a pure function of
// the whole array. Applying LICM before inlining hoists the call and the
// program runs in Θ(n); inlining first buries the reduction loop inside the
// outer loop where LICM can no longer hoist it, leaving Θ(n²).
//
// Run with:
//
//	go run ./examples/phaseordering
package main

import (
	"fmt"
	"log"

	"autophase/internal/hls"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// buildNorm constructs the paper's Figure 1 program: mag() computes a sum
// over the array (an integer stand-in for the sqrt of a dot product), and
// norm() divides each element by it.
func buildNorm(n int) *ir.Module {
	m := ir.NewModule("norm")
	fe := progen.NewFE(m)

	g := m.NewGlobal("in", ir.ArrayOf(ir.I32, n), nil, false)
	out := m.NewGlobal("out", ir.ArrayOf(ir.I32, n), nil, false)

	// mag(n): sum of squares over @in, scaled down so division is benign.
	mag := fe.Begin("mag", ir.I32, "n")
	{
		fe.Var("sum", 0)
		fe.For("i", 0, int64(n), 1, func(iv func() ir.Value) {
			v := fe.GetG(g, iv())
			fe.Set("sum", fe.Add(fe.V("sum"), fe.Mul(v, v)))
		})
		fe.Ret(fe.Or(fe.Sar(fe.V("sum"), fe.C(8)), fe.C(1))) // non-zero
	}

	fe.Begin("main", ir.I32)
	fe.For("init", 0, int64(n), 1, func(iv func() ir.Value) {
		fe.PutG(g, iv(), fe.Add(fe.And(fe.Mul(iv(), fe.C(37)), fe.C(0xff)), fe.C(1)))
	})
	// norm: out[i] = in[i] * 1000 / mag(n, in)
	fe.For("i", 0, int64(n), 1, func(iv func() ir.Value) {
		d := fe.Call(mag, fe.C(int64(n)))
		fe.PutG(out, iv(), fe.Div(fe.Mul(fe.GetG(g, iv()), fe.C(1000)), d))
	})
	fe.Var("checksum", 0)
	fe.For("k", 0, int64(n), 1, func(kv func() ir.Value) {
		fe.Set("checksum", fe.Add(fe.V("checksum"), fe.GetG(out, kv())))
	})
	fe.Print(fe.V("checksum"))
	fe.Ret(fe.V("checksum"))
	return m
}

var profiler = hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})

func cyclesAfter(m *ir.Module, seq []int) int64 {
	c := m.Clone()
	passes.Apply(c, seq)
	rep, err := profiler.Profile(c)
	if err != nil {
		log.Fatal(err)
	}
	return rep.Cycles
}

func nameSeq(seq []int) string {
	s := ""
	for i, p := range seq {
		if i > 0 {
			s += " "
		}
		s += passes.Table1Names[p]
	}
	return s
}

func main() {
	const (
		mem2reg       = 38
		functionattrs = 19
		licm          = 36
		inline        = 25
		loopSimplify  = 29
	)
	for _, n := range []int{32, 64, 128} {
		m := buildNorm(n)
		base := cyclesAfter(m, nil)

		// Order A (Figure 2): LICM first — the pure mag() call hoists out
		// of the loop — then inline.
		orderA := []int{mem2reg, loopSimplify, functionattrs, licm, inline}
		// Order B (Figure 3): inline first, then LICM — the reduction loop
		// is now nested and cannot be hoisted.
		orderB := []int{mem2reg, loopSimplify, inline, functionattrs, licm}

		a := cyclesAfter(m, orderA)
		b := cyclesAfter(m, orderB)
		fmt.Printf("n=%3d  -O0=%8d cycles   licm→inline=%8d (Θ(n))   inline→licm=%8d (Θ(n²))   ratio=%.1fx\n",
			n, base, a, b, float64(b)/float64(a))
	}
	fmt.Println("\nThe same passes, opposite order: the Θ(n) / Θ(n²) gap from the")
	fmt.Println("paper's introduction. This is why phase ordering matters for HLS.")
}
