// Generalization: train once on random programs, optimize unseen programs
// with a single inference rollout (§6.2 of the paper).
//
// Run with:
//
//	go run ./examples/generalization
//
// The deep-RL agent trains on CSmith-style random programs only — the
// worst case for transfer — then zero-shot optimizes the nine real
// benchmarks at one profiler sample each, where black-box searches would
// need thousands of samples per new program.
package main

import (
	"fmt"
	"log"

	"autophase/internal/core"
	"autophase/internal/experiments"
)

func main() {
	// The quick evaluation budgets (10 training programs, 6k PPO steps):
	// a couple of minutes of training.
	sc := experiments.Quick()

	fmt.Printf("generating %d random training programs...\n", sc.TrainPrograms)
	// Same committed seeds as the Figure 9 evaluation run (results/).
	train, err := experiments.RandomPrograms(sc.TrainPrograms, 9000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the random-forest importance analysis (Figures 5-6)...")
	imp := experiments.Importance(train, sc, 1)
	set := experiments.GenSettings(imp, sc)[2] // filtered-norm2
	fmt.Printf("filtered state space: %d features; filtered action space: %d passes\n",
		len(set.Cfg.FeatureMask), len(set.Cfg.ActionList))

	fmt.Printf("training PPO (filtered-norm2) for %d steps...\n", sc.GenRLSteps)
	agent, curve := experiments.TrainGeneralizer(train, set, sc, 8805857438948679074)
	if len(curve) > 0 {
		fmt.Printf("  final episode reward mean: %.2f\n", curve[len(curve)-1].RewardMean)
	}

	fmt.Println("\nzero-shot inference on the nine benchmarks (1 sample each):")
	test, err := experiments.BenchmarkPrograms()
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, p := range test {
		p.ResetSamples(true)
		_, cycles, ok := core.InferGreedy(p, set.Cfg, func(obs []float64) int {
			return agent.Act(obs, true)[0]
		})
		if !ok {
			cycles = p.O0Cycles
		}
		impr := p.SpeedupOverO3(cycles)
		sum += impr
		fmt.Printf("  %-10s %8d cycles  (%+6.1f%% vs -O3)  samples=%d\n",
			p.Name, cycles, impr*100, p.Samples())
	}
	fmt.Printf("mean improvement over -O3: %+.1f%%\n", sum/float64(len(test))*100)
}
