// Quickstart: optimize one HLS benchmark's phase ordering with deep RL.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It builds the matmul benchmark, shows the -O0/-O3 baselines, trains a
// small PPO agent whose observation is the applied-pass histogram (the
// paper's RL-PPO2 configuration), and reports the best phase ordering the
// agent discovered.
package main

import (
	"fmt"
	"log"

	"autophase/internal/core"
	"autophase/internal/passes"
	"autophase/internal/progen"
	"autophase/internal/rl"
)

func main() {
	// 1. Load a program (any ir.Module works; progen bundles nine
	// CHStone-style benchmarks and a random-program generator).
	p, err := core.NewProgram("matmul", progen.Benchmark("matmul"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matmul: -O0 = %d cycles, -O3 = %d cycles\n", p.O0Cycles, p.O3Cycles)

	// 2. Wrap it in the gym-style phase-ordering environment (§5.1): each
	// step applies one more pass, the reward is the drop in estimated
	// clock cycles from the HLS profiler.
	cfg := core.DefaultEnv()
	cfg.Obs = core.ObsHistogram // RL-PPO2 in Table 3
	cfg.EpisodeLen = 24
	env := core.NewPhaseEnv(p, cfg)

	// 3. Train PPO.
	pcfg := rl.DefaultPPO()
	pcfg.RolloutSteps = 128
	agent := rl.NewPPO(pcfg, env.ObsSize(), env.ActionDims())
	agent.Train([]rl.Env{env}, 1200, func(st rl.Stats) {
		fmt.Printf("  iter %2d: steps=%4d episode reward mean=%.0f\n",
			st.Iteration, st.TotalSteps, st.EpisodeRewardMean)
	})

	// 4. Report the best ordering seen during training.
	best, seq := p.BestCycles()
	fmt.Printf("\nbest cycles: %d (%+.1f%% vs -O3) with %d profiler samples\n",
		best, p.SpeedupOverO3(best)*100, p.Samples())
	fmt.Print("sequence:")
	for _, s := range seq {
		fmt.Printf(" %s", passes.Table1Names[s])
	}
	fmt.Println()
}
