// Three-engine cross-check sweep: with the sanitizer enabled, every
// profile runs the static estimator, the bytecode VM and the tree-walking
// interpreter and demands bit-identical cycles/steps/exit/trace before a
// reward is released. This suite drives that mode through the evaluation
// engine over all nine benchmarks under the three reference pipeline
// shapes, at workers=1 and workers=8, and pins the answers to an
// interpreter-only reference — the engines must agree with each other and
// across worker counts.
package autophase_test

import (
	"fmt"
	"testing"

	"autophase/internal/core"
	"autophase/internal/hls"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// vmPipelines are the three pipeline shapes of the differential sweep:
// bare mem2reg, a canonicalization pipeline, and the -O3 reference.
var vmPipelines = [][]int{
	{38},
	{38, 31, 30, 29, 23, 30},
	passes.O3Sequence,
}

func TestThreeEngineCrossCheck(t *testing.T) {
	run := func(workers int) map[string]int64 {
		got := make(map[string]int64)
		for _, name := range progen.BenchmarkNames {
			p := detProgram(t, name)
			p.EnableSanitizer()
			ev := core.NewEvaluator(p, workers)
			for i, r := range ev.EvalBatch(vmPipelines) {
				if !r.Ok {
					t.Fatalf("%s pipeline %d (workers=%d): cross-checked compile failed: %v",
						name, i, workers, r.Fault)
				}
				got[fmt.Sprintf("%s/%d", name, i)] = r.Cycles
			}
			if st := p.EvalStats(); st.FPMismatches != 0 {
				t.Fatalf("%s (workers=%d): %d fingerprint mismatches under cross-check",
					name, workers, st.FPMismatches)
			}
		}
		return got
	}

	r1 := run(1)
	r8 := run(8)
	if len(r1) != len(r8) {
		t.Fatalf("worker sweeps scored different key sets: %d vs %d", len(r1), len(r8))
	}
	for k, c1 := range r1 {
		if c8 := r8[k]; c1 != c8 {
			t.Fatalf("%s: cycles diverged across worker counts: workers=1 %d, workers=8 %d", k, c1, c8)
		}
	}

	// Pin the tree-walking interpreter as the external reference: the
	// cross-checked engine answers must equal an interpreter-only profile
	// of the same IR, not merely agree among themselves.
	ref := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})
	for _, name := range progen.BenchmarkNames {
		for i, seq := range vmPipelines {
			m := progen.Benchmark(name)
			passes.Apply(m, seq)
			rep, err := ref.Profile(m)
			if err != nil {
				t.Fatalf("%s pipeline %d: interpreter reference failed: %v", name, i, err)
			}
			if want := r1[fmt.Sprintf("%s/%d", name, i)]; rep.Cycles != want {
				t.Fatalf("%s pipeline %d: cross-checked cycles %d != interpreter reference %d",
					name, i, want, rep.Cycles)
			}
		}
	}
}

// TestPinnedEngineAgreement: pinning the profiler to one engine through the
// core surface (the -engine flag's path) never changes a reward, only which
// backend produces it. The VM may decline post-pipeline shapes it cannot
// lower, so the pinned-VM run is checked only where it answers.
func TestPinnedEngineAgreement(t *testing.T) {
	for _, name := range []string{"matmul", "qsort", "sha"} {
		base := detProgram(t, name)
		ref := core.NewEvaluator(base, 1).EvalBatch(vmPipelines)

		for _, eng := range []hls.Engine{hls.EngineVM, hls.EngineInterp} {
			p := detProgram(t, name)
			p.SetEngine(eng)
			for i, r := range core.NewEvaluator(p, 8).EvalBatch(vmPipelines) {
				if !r.Ok {
					if eng == hls.EngineInterp {
						t.Fatalf("%s pipeline %d: pinned interpreter failed: %v", name, i, r.Fault)
					}
					continue // a pinned-VM decline is a fault, not a wrong answer
				}
				if !ref[i].Ok || r.Cycles != ref[i].Cycles {
					t.Fatalf("%s pipeline %d: pinned %v cycles %d != auto cycles %d",
						name, i, eng, r.Cycles, ref[i].Cycles)
				}
			}
		}
	}
}
