// Package autophase is a from-scratch Go reproduction of "AutoPhase:
// Juggling HLS Phase Orderings in Random Forests with Deep Reinforcement
// Learning" (Huang, Haj-Ali et al., MLSys 2020).
//
// The public surface lives under internal/ packages wired together by
// cmd/autophase and cmd/experiments; see README.md for the architecture and
// DESIGN.md for the paper-to-module mapping. The root package exists to
// host the repository-level benchmarks (bench_test.go), which regenerate
// each table and figure of the paper's evaluation.
package autophase
