// Warm-start differential suite: the persistent artifact store must be
// invisible in results (cache off, cold and warm runs produce bit-identical
// reports and search outcomes) and decisive in cost (a warm process answers
// previously seen (fingerprint, config, limits) keys from disk with zero
// engine executions).
package autophase_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"autophase/internal/artifact"
	"autophase/internal/core"
	"autophase/internal/hls"
	"autophase/internal/ir"
	"autophase/internal/passes"
	"autophase/internal/progen"
	"autophase/internal/search"
)

// sweepPreludes are the three pipeline shapes of the nine-benchmark sweep
// (mirroring the hls profiler differential suite): bare mem2reg, a
// canonicalization pipeline, and the full -O3 reference sequence.
var sweepPreludes = [][]int{
	{38},
	{38, 31, 30, 29, 23, 30},
	passes.O3Sequence,
}

// sweepOutcome is everything observable about one benchmark × prelude cell;
// two sweeps are equivalent iff their outcome slices are deep-equal.
type sweepOutcome struct {
	name    string
	prelude int
	o0, o3  int64
	cycles  int64
	area    int64
	ok      bool
	feats   string
}

// runSweep evaluates the nine-benchmark × three-prelude grid with st as the
// process-default artifact store (nil = memory only), and aggregates the
// engine-execution and disk-hit counters across all programs.
func runSweep(t testing.TB, st *artifact.Store) (outs []sweepOutcome, engineRuns, diskHits int64) {
	t.Helper()
	core.SetDefaultArtifacts(st)
	defer core.SetDefaultArtifacts(nil)
	for _, name := range progen.BenchmarkNames {
		p, err := core.NewProgram(name, progen.Benchmark(name))
		if err != nil {
			t.Fatalf("NewProgram(%s): %v", name, err)
		}
		for pi, seq := range sweepPreludes {
			cycles, area, ok := p.CompileArea(seq)
			_, feats, _ := p.Compile(seq) // memoized: same sample, adds the vector
			outs = append(outs, sweepOutcome{
				name: name, prelude: pi, o0: p.O0Cycles, o3: p.O3Cycles,
				cycles: cycles, area: area, ok: ok, feats: fmt.Sprint(feats),
			})
		}
		es := p.EvalStats()
		engineRuns += es.StaticHits + es.VMHits + es.InterpHits
		diskHits += es.DiskHits
	}
	return outs, engineRuns, diskHits
}

func diffSweeps(t *testing.T, label string, a, b []sweepOutcome) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d outcomes", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: outcome diverged for %s/prelude %d:\n  %+v\n  %+v",
				label, a[i].name, a[i].prelude, a[i], b[i])
		}
	}
}

// TestWarmStartSweep is the acceptance differential: cache off, cold and
// warm sweeps agree bit-for-bit; the warm sweep runs zero engines for the
// previously seen keys and answers from disk.
func TestWarmStartSweep(t *testing.T) {
	off, offEngines, offDisk := runSweep(t, nil)
	if offEngines == 0 {
		t.Fatal("cache-off sweep reports zero engine executions — counter wiring broken")
	}
	if offDisk != 0 {
		t.Fatalf("cache-off sweep reports %d disk hits", offDisk)
	}

	dir := t.TempDir()
	st, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldEngines, _ := runSweep(t, st)
	diffSweeps(t, "off vs cold", off, cold)
	if coldEngines == 0 {
		t.Fatal("cold sweep reports zero engine executions")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm, warmEngines, warmDisk := runSweep(t, st2)
	diffSweeps(t, "cold vs warm", cold, warm)
	if warmEngines != 0 {
		t.Fatalf("warm sweep executed an engine %d times for previously seen keys", warmEngines)
	}
	if warmDisk == 0 {
		t.Fatal("warm sweep reports zero disk hits")
	}
}

// TestWarmStartSearchIdentical runs the same seeded random search with the
// cache off, cold and warm: the incumbent (sequence and cycles) and the
// sample count must be identical in all three — the store is a pure
// performance tier, never a behavioural one.
func TestWarmStartSearchIdentical(t *testing.T) {
	run := func(st *artifact.Store) (int64, []int, int) {
		core.SetDefaultArtifacts(st)
		defer core.SetDefaultArtifacts(nil)
		p, err := core.NewProgram("matmul", progen.Benchmark("matmul"))
		if err != nil {
			t.Fatal(err)
		}
		obj := core.NewEvaluator(p, 4).Objective(10)
		search.Random(obj, rand.New(rand.NewSource(17)), 200)
		best, seq := p.BestCycles()
		return best, seq, p.Samples()
	}

	offBest, offSeq, offSamples := run(nil)

	dir := t.TempDir()
	st, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldBest, coldSeq, coldSamples := run(st)
	st.Close()
	st2, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warmBest, warmSeq, warmSamples := run(st2)

	for _, mode := range []struct {
		label   string
		best    int64
		seq     []int
		samples int
	}{
		{"cold", coldBest, coldSeq, coldSamples},
		{"warm", warmBest, warmSeq, warmSamples},
	} {
		if mode.best != offBest || fmt.Sprint(mode.seq) != fmt.Sprint(offSeq) || mode.samples != offSamples {
			t.Errorf("%s search diverged from cache-off: best %d seq %v samples %d, want %d %v %d",
				mode.label, mode.best, mode.seq, mode.samples, offBest, offSeq, offSamples)
		}
	}
}

// benchModules builds the nine-benchmark × three-prelude module set once.
// Pass application is deliberately outside the timed region below: the
// store persists profiling work (schedule + execution), not pass pipelines,
// so the cold/warm pair isolates exactly the stage the store amortizes.
var (
	benchModulesOnce sync.Once
	benchModulesSet  []*ir.Module
)

func benchModules() []*ir.Module {
	benchModulesOnce.Do(func() {
		for _, name := range progen.BenchmarkNames {
			for _, seq := range sweepPreludes {
				m := progen.Benchmark(name)
				passes.Apply(m, seq)
				benchModulesSet = append(benchModulesSet, m)
			}
		}
	})
	return benchModulesSet
}

// benchProfileAll profiles every module through a fresh interpreter-pinned
// profiler backed by st — a new profiler per call, so in-memory memoization
// never leaks between iterations and a warm run measures the disk tier.
func benchProfileAll(b *testing.B, st *artifact.Store, ms []*ir.Module) {
	prof := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})
	prof.SetArtifacts(st)
	for _, m := range ms {
		if _, err := prof.Profile(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepColdStore: profile the nine-benchmark × three-prelude
// module set against a store that has never seen the keys — every profile
// schedules and executes, every report is written behind.
func BenchmarkSweepColdStore(b *testing.B) {
	ms := benchModules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := artifact.Open(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchProfileAll(b, st, ms)
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkSweepWarmStore: the same profiles against a primed store
// reopened from disk — the repeated-run shape the persistence layer exists
// for. Compare ns/op against BenchmarkSweepColdStore; CI derives the
// speedup ratio.
func BenchmarkSweepWarmStore(b *testing.B) {
	ms := benchModules()
	dir := b.TempDir()
	st, err := artifact.Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchProfileAll(b, st, ms)
	st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := artifact.Open(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchProfileAll(b, st, ms)
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}
