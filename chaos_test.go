// Chaos suite: every consumer of the evaluation engine — the search
// algorithms and the RL trainers — must survive sustained deterministic
// fault injection without crashing or hanging, while keeping the engine's
// accounting invariant (samples == successes + faults + flagged) and never
// reporting a quarantined sequence as its best result.
//
// Set AUTOPHASE_CHAOS_DIR to also exercise the crash-bundle sink; CI points
// it at an artifact directory so bundles from a failing run are uploaded.
package autophase_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"autophase/internal/artifact"
	"autophase/internal/core"
	"autophase/internal/faults"
	"autophase/internal/hls"
	"autophase/internal/progen"
	"autophase/internal/rl"
	"autophase/internal/search"
	"autophase/internal/serve"
)

// detProgramIR returns a benchmark's IR text, as a serve client would POST
// it.
func detProgramIR(t *testing.T, name string) string {
	t.Helper()
	m := progen.Benchmark(name)
	if m == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	return m.String()
}

// chaosSpec keeps every injection point active at a 1–5% rate.
const chaosSpec = "pass-panic:0.03,interp-stall:0.02,profile-err:0.03,feature-panic:0.01,vm-panic:0.02"

const chaosWorkers = 8

// runChaos drives fn against a freshly injected program under a watchdog,
// then checks the engine invariants.
func runChaos(t *testing.T, prog string, fn func(p *core.Program)) {
	t.Helper()
	p := detProgram(t, prog)
	if dir := os.Getenv("AUTOPHASE_CHAOS_DIR"); dir != "" {
		core.SetCrashDir(dir)
		defer core.SetCrashDir("")
	}
	spec, err := faults.ParseSpec(chaosSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(spec)
	defer faults.Disable()

	done := make(chan struct{})
	go func() {
		defer close(done)
		fn(p)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("chaos driver hung: watchdog fired after 90s")
	}
	faults.Disable()

	st := p.EvalStats()
	if st.Samples != st.Successes+st.Faults+st.Flagged {
		t.Fatalf("accounting invariant broken: samples=%d successes=%d faults=%d flagged=%d",
			st.Samples, st.Successes, st.Faults, st.Flagged)
	}
	if st.Faults == 0 {
		t.Fatalf("no faults at these injection rates — injection is not reaching the engine: %+v", st)
	}
	if st.Quarantined > st.Faults {
		t.Fatalf("quarantine (%d) outgrew the fault count (%d)", st.Quarantined, st.Faults)
	}
	if best, seq := p.BestCycles(); seq != nil {
		if f, q := p.IsQuarantined(seq); q {
			t.Fatalf("best sequence (%d cycles) is quarantined: %v", best, f)
		}
		if _, _, ok := p.Compile(seq); !ok {
			t.Fatalf("best sequence does not recompile cleanly with injection off: %v", seq)
		}
	}
}

func TestChaosRandom(t *testing.T) {
	runChaos(t, "matmul", func(p *core.Program) {
		obj := core.NewEvaluator(p, chaosWorkers).Objective(10)
		search.Random(obj, rand.New(rand.NewSource(4)), 300)
	})
}

// TestChaosVMPinned pins the profiler to the bytecode VM so every injected
// vm-panic fires inside the dispatch loop; containment must hold exactly as
// it does for interpreter panics, with the panic surfacing as a contained
// profile-stage fault rather than a dead worker.
func TestChaosVMPinned(t *testing.T) {
	runChaos(t, "gsm", func(p *core.Program) {
		p.SetEngine(hls.EngineVM)
		obj := core.NewEvaluator(p, chaosWorkers).Objective(10)
		search.Random(obj, rand.New(rand.NewSource(11)), 300)
	})
}

func TestChaosGenetic(t *testing.T) {
	runChaos(t, "sha", func(p *core.Program) {
		obj := core.NewEvaluator(p, chaosWorkers).Objective(8)
		search.Genetic(obj, rand.New(rand.NewSource(9)), search.DefaultGA(), 300)
	})
}

func TestChaosES(t *testing.T) {
	runChaos(t, "matmul", func(p *core.Program) {
		envCfg := core.DefaultEnv()
		envCfg.Obs = core.ObsFeatures
		envCfg.EpisodeLen = 6
		envs := make([]rl.Env, chaosWorkers)
		for i := range envs {
			envs[i] = core.NewPhaseEnv(p, envCfg)
		}
		cfg := rl.DefaultES()
		cfg.Hidden = []int{16}
		cfg.Population = 8
		cfg.Seed = 5
		cfg.Workers = chaosWorkers
		agent := rl.NewES(cfg, envs[0].ObsSize(), envs[0].ActionDims())
		for g := 0; g < 3; g++ {
			agent.Generation(envs)
		}
	})
}

// TestChaosDiskCorrupt attacks the persistent artifact store from both
// sides — real on-disk bit flips between runs, plus the disk-corrupt
// injection point during segment load — and demands the warm search still
// reproduce the uncached search bit-for-bit. Corruption must only ever
// demote records to misses, never change results.
func TestChaosDiskCorrupt(t *testing.T) {
	run := func(st *artifact.Store) (int64, []int, int) {
		core.SetDefaultArtifacts(st)
		defer core.SetDefaultArtifacts(nil)
		p := detProgram(t, "matmul")
		obj := core.NewEvaluator(p, chaosWorkers).Objective(10)
		search.Random(obj, rand.New(rand.NewSource(21)), 200)
		best, seq := p.BestCycles()
		return best, seq, p.Samples()
	}

	wantBest, wantSeq, wantSamples := run(nil)

	dir := t.TempDir()
	st, err := artifact.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldBest, coldSeq, coldSamples := run(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if coldBest != wantBest || fmt.Sprint(coldSeq) != fmt.Sprint(wantSeq) || coldSamples != wantSamples {
		t.Fatalf("cold cached search diverged: best %d seq %v samples %d, want %d %v %d",
			coldBest, coldSeq, coldSamples, wantBest, wantSeq, wantSamples)
	}

	// Flip a spray of bytes across every segment, header included, so the
	// reload sees bad checksums, torn framing, and possibly version skew.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to corrupt (err=%v)", err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		flips := 1 + len(data)/512
		for i := 0; i < flips; i++ {
			data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen under disk-corrupt injection as well: records that survived the
	// byte spray are additionally dropped at random during load.
	spec, err := faults.ParseSpec("disk-corrupt:0.2", 13)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(spec)
	st2, err := artifact.Open(dir, 0)
	faults.Disable()
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	warmBest, warmSeq, warmSamples := run(st2)
	if warmBest != wantBest || fmt.Sprint(warmSeq) != fmt.Sprint(wantSeq) || warmSamples != wantSamples {
		t.Fatalf("search after corruption diverged: best %d seq %v samples %d, want %d %v %d",
			warmBest, warmSeq, warmSamples, wantBest, wantSeq, wantSamples)
	}
	if stats := st2.Stats(); stats.Corrupt == 0 {
		t.Fatalf("corrupted store reloaded without counting any corruption: %+v", stats)
	}
}

// TestChaosServe drives fault injection through a live multi-tenant
// server: eight tenants hammer real HTTP submissions while every injection
// point — including the serve layer's own panic point — fires at 1–5%
// rates. The service must keep every contract it makes under fire: all
// accepted jobs reach a terminal state, every rejection is an explicit
// 429/503 with Retry-After, the engine's accounting invariant holds across
// the whole tenant population, and contained serve panics never kill a
// worker (the run finishes).
func TestChaosServe(t *testing.T) {
	if dir := os.Getenv("AUTOPHASE_CHAOS_DIR"); dir != "" {
		core.SetCrashDir(dir)
		defer core.SetCrashDir("")
	}
	cfg := serve.DefaultConfig()
	cfg.Workers = chaosWorkers
	cfg.TenantRate = 30
	cfg.TenantBurst = 5
	cfg.BreakerCooldown = 200 * time.Millisecond
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	irText := detProgramIR(t, "matmul")
	spec, err := faults.ParseSpec(chaosSpec+",serve-panic:0.05", 7)
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(spec)
	defer faults.Disable()

	const tenantsN, jobsPerTenant = 8, 6
	type outcome struct {
		state   string
		badShed bool
		err     string
	}
	results := make(chan outcome, tenantsN*jobsPerTenant)
	var wg sync.WaitGroup
	for tn := 0; tn < tenantsN; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < jobsPerTenant; i++ {
				body, _ := json.Marshal(serve.SubmitRequest{
					Tenant: fmt.Sprintf("t%d", tn), IR: irText, Budget: 8, SeqLen: 5,
				})
				var id string
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						results <- outcome{err: err.Error()}
						return
					}
					payload, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted {
						var ack serve.SubmitResponse
						json.Unmarshal(payload, &ack)
						id = ack.ID
						break
					}
					bad := (resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable) ||
						resp.Header.Get("Retry-After") == ""
					if bad {
						results <- outcome{badShed: true, err: fmt.Sprintf("status %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))}
						return
					}
					if attempt > 200 {
						results <- outcome{err: "retry budget exhausted"}
						return
					}
					time.Sleep(50 * time.Millisecond)
				}
				for {
					resp, err := client.Get(ts.URL + "/v1/jobs/" + id + "?wait=2s")
					if err != nil {
						results <- outcome{err: err.Error()}
						return
					}
					var st serve.JobStatus
					err = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if err != nil {
						results <- outcome{err: err.Error()}
						return
					}
					if st.State != "queued" && st.State != "running" {
						results <- outcome{state: st.State}
						break
					}
				}
			}
		}(tn)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("serve chaos hung: watchdog fired after 120s")
	}
	faults.Disable()
	close(results)

	terminal := 0
	for r := range results {
		if r.err != "" || r.badShed {
			t.Fatalf("client saw a broken contract: badShed=%v err=%s", r.badShed, r.err)
		}
		switch r.state {
		case "done", "fault", "deadline":
			terminal++
		default:
			t.Fatalf("job ended in non-terminal state %q", r.state)
		}
	}
	if terminal != tenantsN*jobsPerTenant {
		t.Fatalf("%d of %d jobs reached a terminal state", terminal, tenantsN*jobsPerTenant)
	}

	rep := srv.Stats()
	var samples, successes, faultsN, flagged int64
	for _, tr := range rep.Tenants {
		samples += tr.Samples
		successes += tr.Successes
		faultsN += tr.Faults
		flagged += tr.Flagged
	}
	if samples != successes+faultsN+flagged {
		t.Fatalf("accounting invariant broken across tenants: samples=%d successes=%d faults=%d flagged=%d",
			samples, successes, faultsN, flagged)
	}
	if len(rep.Tenants) != tenantsN {
		t.Fatalf("server saw %d tenants, want %d", len(rep.Tenants), tenantsN)
	}
	// Injection at these rates must actually have reached the service.
	faulted := int64(0)
	for _, tr := range rep.Tenants {
		faulted += tr.Faulted
	}
	if faultsN == 0 && faulted == 0 {
		t.Fatalf("no faults observed — injection is not reaching the serve layer: %+v", rep)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestChaosPPO(t *testing.T) {
	runChaos(t, "qsort", func(p *core.Program) {
		envCfg := core.DefaultEnv()
		envCfg.Obs = core.ObsHistogram
		envCfg.EpisodeLen = 8
		env := core.NewPhaseEnv(p, envCfg)
		cfg := rl.DefaultPPO()
		cfg.RolloutSteps = 64
		agent := rl.NewPPO(cfg, env.ObsSize(), env.ActionDims())
		agent.Train([]rl.Env{env}, 256, nil)
	})
}
