// Package repro's root benchmarks regenerate every table and figure of the
// paper at the quick scale. Each benchmark reports the paper's metric as
// custom benchmark metrics (improvement over -O3 in percent, samples per
// program), so `go test -bench=. -benchmem` prints the rows the paper's
// evaluation reports. EXPERIMENTS.md records the paper-vs-measured values.
package autophase_test

import (
	"math/rand"
	"testing"

	"autophase/internal/core"
	"autophase/internal/experiments"
	"autophase/internal/features"
	"autophase/internal/forest"
	"autophase/internal/hls"
	"autophase/internal/passes"
	"autophase/internal/progen"
)

// --- Substrate micro-benchmarks -----------------------------------------

// BenchmarkTable1PassApplication measures applying the full Table 1 pass
// set (the -O3 pipeline) to a benchmark.
func BenchmarkTable1PassApplication(b *testing.B) {
	orig := progen.Benchmark("aes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := orig.Clone()
		passes.ApplyO3(m)
	}
}

// BenchmarkTable2FeatureExtraction measures the 56-feature extractor.
func BenchmarkTable2FeatureExtraction(b *testing.B) {
	m := progen.Benchmark("mpeg2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(m)
	}
}

// BenchmarkHLSProfile measures one compile→schedule→profile sample, the
// unit of the paper's samples-per-program axis.
func BenchmarkHLSProfile(b *testing.B) {
	m := progen.Benchmark("sha")
	prof := hls.NewProfiler(hls.ProfileOptions{Engine: hls.EngineInterp})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prof.Profile(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomProgramGeneration measures the CSmith stand-in.
func BenchmarkRandomProgramGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		progen.Generate(int64(i)+1, progen.DefaultGen)
	}
}

// --- Figure 5 / Figure 6: random-forest importance -----------------------

func importanceInputs(b *testing.B) []core.Tuple {
	b.Helper()
	train, err := experiments.RandomPrograms(4, 9000)
	if err != nil {
		b.Fatal(err)
	}
	return core.CollectTuples(train, 3, 10, rand.New(rand.NewSource(1)))
}

// BenchmarkFig5FeatureImportance trains the per-pass forests on program
// features and reports how concentrated the importance mass is.
func BenchmarkFig5FeatureImportance(b *testing.B) {
	tuples := importanceInputs(b)
	cfg := forest.DefaultConfig
	cfg.Trees = 8
	b.ResetTimer()
	var imp *core.Importance
	for i := 0; i < b.N; i++ {
		imp = core.AnalyzeImportance(tuples, cfg)
	}
	b.StopTimer()
	feats := imp.TopFeatures(24)
	b.ReportMetric(float64(len(feats)), "top-features")
}

// BenchmarkFig6PassImportance reports the filtered action-space size.
func BenchmarkFig6PassImportance(b *testing.B) {
	tuples := importanceInputs(b)
	cfg := forest.DefaultConfig
	cfg.Trees = 8
	b.ResetTimer()
	var imp *core.Importance
	for i := 0; i < b.N; i++ {
		imp = core.AnalyzeImportance(tuples, cfg)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(imp.TopPasses(16))), "top-passes")
}

// --- Figure 7: per-program comparison -------------------------------------

// fig7Scale is smaller than Quick so the full algorithm sweep fits in a
// benchmark run; use cmd/experiments for the real evaluation.
func fig7Scale() experiments.Scale {
	sc := experiments.Quick()
	sc.RLSteps = 180
	sc.EpisodeLen = 10
	sc.GreedyBudget = 140
	sc.PPO3Steps = 140
	sc.OTBudget = 200
	sc.ESSteps = 220
	sc.GABudget = 340
	sc.RandBudget = 420
	return sc
}

func benchFig7Algo(b *testing.B, algo string) {
	programs, err := experiments.BenchmarkPrograms()
	if err != nil {
		b.Fatal(err)
	}
	sc := fig7Scale()
	b.ResetTimer()
	var mean, samples float64
	for i := 0; i < b.N; i++ {
		var sum float64
		var totalSamples float64
		for _, p := range programs {
			p.ResetSamples(true)
			best := experiments.RunFig7Algo(algo, p, sc)
			sum += p.SpeedupOverO3(best)
			totalSamples += float64(p.Samples())
		}
		mean = sum / float64(len(programs))
		samples = totalSamples / float64(len(programs))
	}
	b.StopTimer()
	b.ReportMetric(mean*100, "%improv-vs-O3")
	b.ReportMetric(samples, "samples/prog")
}

// One benchmark per Figure 7 bar, in the paper's order.

func BenchmarkFig7_O0(b *testing.B)          { benchFig7Algo(b, "-O0") }
func BenchmarkFig7_O3(b *testing.B)          { benchFig7Algo(b, "-O3") }
func BenchmarkFig7_RLPPO1(b *testing.B)      { benchFig7Algo(b, "RL-PPO1") }
func BenchmarkFig7_RLPPO2(b *testing.B)      { benchFig7Algo(b, "RL-PPO2") }
func BenchmarkFig7_RLA3C(b *testing.B)       { benchFig7Algo(b, "RL-A3C") }
func BenchmarkFig7_Greedy(b *testing.B)      { benchFig7Algo(b, "Greedy") }
func BenchmarkFig7_RLPPO3(b *testing.B)      { benchFig7Algo(b, "RL-PPO3") }
func BenchmarkFig7_OpenTuner(b *testing.B)   { benchFig7Algo(b, "OpenTuner") }
func BenchmarkFig7_RLES(b *testing.B)        { benchFig7Algo(b, "RL-ES") }
func BenchmarkFig7_GeneticDEAP(b *testing.B) { benchFig7Algo(b, "Genetic-DEAP") }
func BenchmarkFig7_Random(b *testing.B)      { benchFig7Algo(b, "random") }

// --- Figure 8: generalization learning curves -----------------------------

func benchGenSetting(b *testing.B, settingIdx int) {
	sc := experiments.Quick()
	sc.TrainPrograms = 6
	sc.GenRLSteps = 900
	train, err := experiments.RandomPrograms(sc.TrainPrograms, 9000)
	if err != nil {
		b.Fatal(err)
	}
	imp := experiments.Importance(train, sc, 1)
	set := experiments.GenSettings(imp, sc)[settingIdx]
	b.ResetTimer()
	var final float64
	for i := 0; i < b.N; i++ {
		for _, p := range train {
			p.ResetSamples(true)
		}
		_, curve := experiments.TrainGeneralizer(train, set, sc, int64(100+i))
		if len(curve) > 0 {
			final = curve[len(curve)-1].RewardMean
		}
	}
	b.StopTimer()
	b.ReportMetric(final, "final-reward-mean")
}

// BenchmarkFig8OriginalNorm2 trains with all features/passes, technique 2.
func BenchmarkFig8OriginalNorm2(b *testing.B) { benchGenSetting(b, 0) }

// BenchmarkFig8FilteredNorm1 trains with §4-filtered spaces, technique 1.
func BenchmarkFig8FilteredNorm1(b *testing.B) { benchGenSetting(b, 1) }

// BenchmarkFig8FilteredNorm2 trains with §4-filtered spaces, technique 2.
func BenchmarkFig8FilteredNorm2(b *testing.B) { benchGenSetting(b, 2) }

// --- Figure 9: zero-shot generalization ------------------------------------

// BenchmarkFig9ZeroShot runs the full transfer comparison: train/search on
// random programs, apply to the nine benchmarks at one sample each.
func BenchmarkFig9ZeroShot(b *testing.B) {
	sc := experiments.Quick()
	sc.TrainPrograms = 5
	sc.GenRLSteps = 700
	sc.TransferBudget = 60
	train, err := experiments.RandomPrograms(sc.TrainPrograms, 9000)
	if err != nil {
		b.Fatal(err)
	}
	imp := experiments.Importance(train, sc, 1)
	test, err := experiments.BenchmarkPrograms()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rlMean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(train, test, imp, sc)
		rlMean = rows[len(rows)-1].Mean // RL-filtered-norm2
	}
	b.StopTimer()
	b.ReportMetric(rlMean*100, "%improv-vs-O3")
}

// --- §6.2: generalization to many random programs --------------------------

// BenchmarkRandomGeneralization trains filtered-norm2 once and reports the
// mean improvement on unseen random programs (the paper's 12,874-program
// experiment, scaled down).
func BenchmarkRandomGeneralization(b *testing.B) {
	sc := experiments.Quick()
	sc.TrainPrograms = 5
	sc.GenRLSteps = 700
	sc.TestRandom = 20
	train, err := experiments.RandomPrograms(sc.TrainPrograms, 9000)
	if err != nil {
		b.Fatal(err)
	}
	imp := experiments.Importance(train, sc, 1)
	set := experiments.GenSettings(imp, sc)[2]
	agent, _ := experiments.TrainGeneralizer(train, set, sc, 42)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.RandomGeneralization(agent, set.Cfg, sc.TestRandom, 777000)
		if err != nil {
			b.Fatal(err)
		}
		mean = m
	}
	b.StopTimer()
	b.ReportMetric(mean*100, "%improv-vs-O3")
}
